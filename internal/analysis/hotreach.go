package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
)

// HotPathReach closes the gap hotpath-alloc leaves open: that analyzer checks
// only the bodies literally annotated //dmp:hotpath, so an annotated function
// could keep its own body clean while delegating the allocation to a helper.
// hotpath-reach walks the module call graph from every annotated function and
// demands that everything reachable is either annotated itself (and therefore
// under hotpath-alloc's eye) or allocation-clean by the same body checks.
//
// The walk expands only through clean unannotated callees: a dirty callee is
// reported at the offending call edge — in the caller, where the hot-path
// contract lives — and its own callees are not examined until it is either
// cleaned or annotated. Calls through function values are an explicit
// escape-hatch diagnostic (the static graph cannot prove anything about the
// target); calls through interface methods are the module's sanctioned
// polymorphism boundary (Sink, Policy) and stay silent, since implementations
// carry their own annotations.
var HotPathReach = &Analyzer{
	Name: "hotpath-reach",
	Doc: "every function reachable from a //dmp:hotpath function must be " +
		"annotated itself or pass the hotpath-alloc body checks; calls through " +
		"function values on hot paths are flagged as unverifiable",
	Run: runHotPathReach,
}

// hotDirty summarizes the silent hotpath-alloc run over one unannotated
// reachable function.
type hotDirty struct {
	count     int
	firstFile string
	firstLine int
}

type hotReachInfo struct {
	// hot holds the hot context: annotated functions plus the clean
	// unannotated functions reachable from them.
	hot map[*types.Func]bool
	// examined caches the body-check verdict per unannotated function;
	// count==0 means clean.
	examined map[*types.Func]*hotDirty
}

func hotReachIndex(pass *Pass) *hotReachInfo {
	return pass.Module.Cached("hotreach.index", func() any {
		return buildHotReach(pass.Module)
	}).(*hotReachInfo)
}

func buildHotReach(m *Module) *hotReachInfo {
	g := m.Graph()
	info := &hotReachInfo{
		hot:      make(map[*types.Func]bool),
		examined: make(map[*types.Func]*hotDirty),
	}
	annotated := make(map[*types.Func]bool)
	var stack []*types.Func
	// Deterministic root order: the examined cache means results do not
	// depend on traversal order, but dmplint's own analyzers hold this code
	// to the same no-map-iteration-into-output standard as the simulator.
	roots := make([]*types.Func, 0, len(g.Funcs))
	for fn, node := range g.Funcs {
		if funcDocHasDirective(node.Decl, HotPathDirective) {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })
	for _, fn := range roots {
		annotated[fn] = true
		info.hot[fn] = true
		stack = append(stack, fn)
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node := g.Funcs[fn]
		if node == nil {
			continue
		}
		for _, e := range node.Calls {
			callee := e.Callee
			if info.hot[callee] || annotated[callee] {
				continue
			}
			cn := g.Funcs[callee]
			if cn == nil {
				continue // stdlib or bodyless: outside the contract
			}
			d := info.examined[callee]
			if d == nil {
				d = examineHot(m, cn)
				info.examined[callee] = d
			}
			if d.count == 0 {
				info.hot[callee] = true
				stack = append(stack, callee)
			}
		}
	}
	return info
}

// examineHot runs the hotpath-alloc body checks over one unannotated function
// without emitting anything: the findings only decide clean/dirty, and the
// first one anchors the edge diagnostic.
func examineHot(m *Module, node *FuncNode) *hotDirty {
	scratch := &Pass{
		Analyzer:  HotPathAlloc,
		Fset:      node.Pkg.Fset,
		Files:     node.Pkg.Files,
		Pkg:       node.Pkg.Types,
		TypesInfo: node.Pkg.Info,
		Module:    m,
		pkg:       node.Pkg,
	}
	checkHotPath(scratch, node.Decl)
	d := &hotDirty{count: len(scratch.diags)}
	if d.count > 0 {
		d.firstFile = filepath.Base(scratch.diags[0].File)
		d.firstLine = scratch.diags[0].Line
	}
	return d
}

func runHotPathReach(pass *Pass) {
	info := hotReachIndex(pass)
	if len(info.hot) == 0 {
		return
	}
	g := pass.Module.Graph()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || !info.hot[fn] {
				continue
			}
			node := g.Node(fn)
			if node == nil {
				continue
			}
			for _, e := range node.Calls {
				d := info.examined[e.Callee]
				if d == nil || d.count == 0 {
					continue
				}
				pass.Reportf(e.Pos,
					"hot path escapes its annotation: %s calls %s, which is not //dmp:hotpath "+
						"and fails the allocation checks (%d finding(s), first at %s:%d); "+
						"annotate it after cleaning, or hoist the call off the hot path",
					fd.Name.Name, e.Callee.Name(), d.count, d.firstFile, d.firstLine)
			}
			for _, dc := range node.Dyn {
				if dc.Through != "function value" {
					continue // interface dispatch: sanctioned boundary
				}
				pass.Reportf(dc.Pos,
					"call through a function value on a hot path (%s): the call graph cannot "+
						"verify the target is allocation-clean; call the function directly or "+
						"allowlist with a reason",
					fd.Name.Name)
			}
		}
	}
}
