package analysis_test

import (
	"testing"

	"dismem/internal/analysis"
	"dismem/internal/analysis/analysistest"
)

func TestHotPathReach(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotPathReach, "hotreach")
}
