// Package detclock is the analysistest fixture for the detclock analyzer:
// wall-clock reads, global math/rand draws, and environment lookups are
// flagged; seeded *rand.Rand methods and allowlisted lines are not.
package detclock

import (
	"math/rand"
	"os"
	"time"

	wall "time"
)

type state struct{ rng *rand.Rand }

func wallClock() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock inside the deterministic simulator`
	time.Sleep(1)            // want `time\.Sleep reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func aliased() time.Time {
	return wall.Now() // want `time\.Now reads the wall clock`
}

func globalRand(s *state) float64 {
	_ = rand.Intn(10)      // want `rand\.Intn draws from the process-global generator`
	return s.rng.Float64() // methods on a seeded *rand.Rand are the sanctioned source
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructing a seeded generator is fine
}

func env() string {
	return os.Getenv("DMP_MODE") // want `os\.Getenv makes simulator behaviour depend on the process environment`
}

func allowlisted() int64 {
	return time.Now().UnixNano() //dmplint:ignore detclock fixture: operator escape hatch under test
}
