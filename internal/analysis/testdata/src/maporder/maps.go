// Package maporder is the analysistest fixture for the maporder analyzer.
// Recorder and Engine are lightweight stand-ins for the real telemetry and
// sim types: the analyzer matches by type name so fixtures stay small.
package maporder

import "sort"

type Recorder struct{ n int }

func (r *Recorder) Emit(k string) { r.n++ }
func (r *Recorder) Now() float64  { return 0 }

type Engine struct{}

type Fired struct{}

func (e *Engine) Schedule(at float64)                {}
func (e *Engine) ScheduleTag(at float64, tag uint64) {}
func (e *Engine) FireWindowed(f Fired) bool          { return true }
func (e *Engine) Now() float64                       { return 0 }

func appendUnsorted(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map m`
	}
	return keys
}

func collectThenSort(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort idiom: allowed
	}
	sort.Ints(keys)
	return keys
}

func collectThenSortWrapped(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // sort.Sort(sort.IntSlice(keys)) below still counts
	}
	sort.Sort(sort.IntSlice(keys))
	return keys
}

func localSlice(m map[int]int) int {
	n := 0
	for k := range m {
		parts := make([]int, 0)
		parts = append(parts, k) // slice born inside the body dies each iteration
		n += len(parts)
	}
	return n
}

func emit(m map[int]int, r *Recorder) {
	for k := range m {
		r.Emit("job") // want `telemetry Emit emitted inside range over map m`
		_ = k
	}
}

func readOnly(m map[int]int, r *Recorder) float64 {
	last := 0.0
	for range m {
		last = r.Now() // read-only Recorder methods are harmless
	}
	return last
}

func floatAccum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum inside range over map m`
	}
	return sum
}

func floatAccumSpelled(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want `floating-point accumulation into sum`
	}
	return sum
}

func intAccum(m map[int]int) int {
	n := 0
	for range m {
		n++ // integer addition commutes: fine
	}
	return n
}

func schedule(m map[int]float64, e *Engine) {
	for _, at := range m {
		e.Schedule(at) // want `Engine\.Schedule called inside range over map m`
	}
}

func scheduleTagged(m map[int]float64, e *Engine) {
	for id, at := range m {
		e.ScheduleTag(at, uint64(id)) // want `Engine\.ScheduleTag called inside range over map m`
	}
}

// fireWindow is the window-era form of the same bug (this PR's precedent):
// dispatching popped window members by map iteration order would break the
// serial-order guarantee that makes windowed runs bit-identical.
func fireWindow(m map[int]Fired, e *Engine) {
	for _, f := range m {
		e.FireWindowed(f) // want `Engine\.FireWindowed called inside range over map m`
	}
}

type point struct{ T float64 }

func bodyLocalField(m map[int][]point, off float64) {
	for _, pts := range m {
		for _, p := range pts {
			p.T -= off // field of a body-local copy: per-entry, order-independent
			_ = p
		}
	}
}

func allowlisted(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //dmplint:ignore maporder fixture: all values equal by construction
	}
	return sum
}
