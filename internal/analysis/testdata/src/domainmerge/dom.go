// Package domainmerge is the analysistest fixture for the domainmerge
// analyzer. The sim struct stands in for core.Simulator; only the
// domain-indexed cache fields are name-matched.
package domainmerge

type sim struct {
	domTraffic []float64
	domRho     []float64
	domValid   []bool
	nDom       int
}

// invalidate drops validity bits: pure writes are allowed anywhere.
func (s *sim) invalidate(doms []int) {
	for _, d := range doms {
		s.domValid[d] = false
	}
}

// install replaces the whole caches: still writes, still fine.
func (s *sim) install(n int) {
	s.domTraffic = make([]float64, n)
	s.domRho = make([]float64, n)
	s.domValid = make([]bool, n)
	s.nDom = n
}

// leakRho hands one domain's pressure to a caller that may apply it to a
// job resident somewhere else entirely.
func (s *sim) leakRho(d int) float64 {
	return s.domRho[d] // want `per-domain contention state domRho read in leakRho, which is not a merge step`
}

// skipValid consults the validity cache outside the rebuild step.
func (s *sim) skipValid(d int) bool {
	if s.domValid[d] { // want `per-domain contention state domValid read in skipValid`
		return true
	}
	return false
}

// accumulate is a compound assignment: it reads the old slot before
// storing, so it is a read despite being spelled like a write.
func (s *sim) accumulate(d int, t float64) {
	s.domTraffic[d] += t // want `per-domain contention state domTraffic read in accumulate`
}

// rebuild is the sanctioned merge step: annotated, it may read the caches
// while re-deriving them from scratch.
//
//dmp:domainmerge
func (s *sim) rebuild(doms []int, traffic []float64) {
	for _, d := range doms {
		if s.domValid[d] {
			continue
		}
		s.domTraffic[d] = traffic[d]
		s.domRho[d] = traffic[d] / 4
		s.domValid[d] = true
	}
}

// worst folds rho across the whole domain set — the merge the directive
// exists for.
//
//dmp:domainmerge
func (s *sim) worst(doms []int) float64 {
	max := 0.0
	for _, d := range doms {
		if s.domRho[d] > max {
			max = s.domRho[d]
		}
	}
	return max
}

// writesOnly carries the directive but never reads domain state: the stale
// annotation is itself reported.
//
//dmp:domainmerge
func (s *sim) writesOnly(d int) { // want `stale //dmp:domainmerge on writesOnly`
	s.domValid[d] = false
}

// allowlisted pins the suppression path: an ignored read must stay silent.
func (s *sim) allowlisted(d int) float64 {
	return s.domRho[d] //dmplint:ignore domainmerge fixture: read feeds a domain-local report, never another domain
}
