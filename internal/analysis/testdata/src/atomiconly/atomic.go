// Package atomiconly is the analysistest fixture for the atomiconly
// analyzer: a stats stand-in mixing annotated counters, usage-enforced
// counters, typed sync/atomic fields, and a package-level counter.
package atomiconly

import "sync/atomic"

type stats struct {
	hits   int64 //dmp:atomiconly
	misses int64 // enforced by its atomic accesses alone

	evict int64        //dmp:atomiconly // want `stale //dmp:atomiconly on evict: no sync/atomic access to it anywhere in the module`
	idle  atomic.Int32 //dmp:atomiconly // want `stale //dmp:atomiconly on idle: never accessed through its atomic methods`

	state atomic.Value
	count atomic.Int64 //dmp:atomiconly op tally (reset on drain); prose after a bare directive must not confuse the parse
}

func (s *stats) hit()  { atomic.AddInt64(&s.hits, 1) }
func (s *stats) miss() { atomic.AddInt64(&s.misses, 1) }

// snapshot reads both counters atomically: clean.
func (s *stats) snapshot() (int64, int64) {
	return atomic.LoadInt64(&s.hits), atomic.LoadInt64(&s.misses)
}

// reset races every atomic accessor with plain stores.
func (s *stats) reset() {
	s.hits = 0   // want `plain access to s.hits: it is marked //dmp:atomiconly; use sync/atomic`
	s.misses = 0 // want `plain access to s.misses: it is accessed via sync/atomic elsewhere in the module; use sync/atomic`
}

// tick drives the typed counter through its methods: clean.
func (s *stats) tick() { s.count.Add(1) }

// stash swaps the boxed value through the atomic API: clean.
func (s *stats) stash(v any) { s.state.CompareAndSwap(nil, v) }

// wipe overwrites a sync/atomic value wholesale — the copy tears the value
// out from under concurrent CompareAndSwap callers.
func (s *stats) wipe() {
	s.state = atomic.Value{} // want `whole-value access to s.state: sync/atomic values must not be copied or overwritten; use their methods`
}

// drain is allowlisted: single-threaded teardown after the workers joined.
func (s *stats) drain() int64 {
	return s.hits //dmplint:ignore atomiconly fixture: read happens after the last writer joined
}

var ops int64

func opDone() { atomic.AddInt64(&ops, 1) }

// opCount reads the package-level counter bare.
func opCount() int64 {
	return ops // want `plain access to ops: it is accessed via sync/atomic elsewhere in the module; use sync/atomic`
}

var _ = (&stats{}).snapshot
var _ = (&stats{}).reset
var _ = (&stats{}).hit
var _ = (&stats{}).miss
var _ = (&stats{}).tick
var _ = (&stats{}).stash
var _ = (&stats{}).wipe
var _ = (&stats{}).drain
var _ = opDone
var _ = opCount
