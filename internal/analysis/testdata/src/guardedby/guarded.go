// Package guardedby is the analysistest fixture for the guardedby analyzer:
// a store stand-in with a mutex-guarded map, an RWMutex-guarded index, a
// package-level guarded counter, and the stale/malformed annotation shapes.
package guardedby

import "sync"

type store struct {
	mu sync.Mutex
	rw sync.RWMutex

	m   map[string]int //dmp:guardedby(mu) primary table (key → count); prose after the arg must not confuse the parse
	idx []string       //dmp:guardedby(rw)

	gone int //dmp:guardedby(missing) // want `stale //dmp:guardedby on gone: no sibling field "missing"`
	bad  int //dmp:guardedby(m) // want `stale //dmp:guardedby on bad: sibling "m" is not a sync.Mutex or sync.RWMutex`
}

type halfBaked struct {
	mu sync.Mutex
	x  int //dmp:guardedby // want `malformed //dmp:guardedby on x: missing mutex field name`
}

// Get locks around the read: clean.
func (s *store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

// Peek reads the guarded map bare.
func (s *store) Peek(k string) int {
	return s.m[k] // want `read of s.m requires s.mu held \(//dmp:guardedby\(mu\)\)`
}

// Push writes while holding only the read lock.
func (s *store) Push(k string) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.idx = append(s.idx, k) // want `write of s.idx requires s.rw held exclusively, but only RLock is held`
}

// Scan reads under RLock: the shared mode admits reads.
func (s *store) Scan() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return len(s.idx)
}

// put is an unexported helper: its uncovered write becomes an obligation on
// every caller rather than a local diagnostic.
func (s *store) put(k string, v int) {
	s.m[k] = v
}

// Set delegates with the lock held: the obligation is satisfied.
func (s *store) Set(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.put(k, v)
}

// Slam forgets the lock: the inherited obligation fires at the call edge.
func (s *store) Slam(k string) {
	s.put(k, 0) // want `call to put requires s.mu held exclusively \(callee touches //dmp:guardedby field m\)`
}

// relay forwards the obligation one more hop: unexported, so its own callers
// are checked instead of this call site.
func (s *store) relay(k string) {
	s.put(k, 1)
}

// Bounce calls the forwarding helper without the lock.
func (s *store) Bounce(k string) {
	s.relay(k) // want `call to relay requires s.mu held exclusively \(callee touches //dmp:guardedby field m\)`
}

// Flush hands guarded state to a goroutine, which starts with nothing held
// even though the spawning body holds the lock.
func (s *store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.m = nil // want `write of s.m requires s.mu held exclusively \(//dmp:guardedby\(mu\)\)`
	}()
}

// Seed is allowlisted: the store is not shared yet.
func (s *store) Seed() {
	s.m = map[string]int{} //dmplint:ignore guardedby fixture: construction happens before the store is shared
}

var counters = struct {
	mu sync.Mutex
	n  int //dmp:guardedby(mu)
}{}

// bump locks the package-level guard correctly.
func bump() {
	counters.mu.Lock()
	counters.n++
	counters.mu.Unlock()
}

// skim reads it bare: package-level owners are checked too.
func skim() int {
	return counters.n // want `read of counters.n requires counters.mu held \(//dmp:guardedby\(mu\)\)`
}

var _ = halfBaked{}
var _ = bump
var _ = skim
