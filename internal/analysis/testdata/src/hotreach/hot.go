// Package hotreach is the analysistest fixture for the hotpath-reach
// analyzer: annotated hot functions delegating to clean helpers, dirty
// helpers, and function values.
package hotreach

import "fmt"

type metrics struct{ names []string }

// step keeps its own body clean but delegates the allocation.
//
//dmp:hotpath
func (m *metrics) step(i int) string {
	return m.label(i) // want `hot path escapes its annotation: step calls label`
}

// label is dirty: Sprintf allocates on every call.
func (m *metrics) label(i int) string {
	return fmt.Sprintf("m%d", i)
}

// tick reaches only clean helpers: no findings anywhere on this chain.
//
//dmp:hotpath
func (m *metrics) tick(i int) int {
	return m.bump(i)
}

func (m *metrics) bump(i int) int { return i + 1 }

// hop calls an annotated callee: hotpath-alloc owns that body, so the edge
// is not re-examined.
//
//dmp:hotpath
func (m *metrics) hop(i int) int { return m.tick(i) }

// deep shows the closure walking through a clean intermediate: the edge
// into the dirty callee is reported at the intermediate, inside the hot
// context, where the fix belongs.
//
//dmp:hotpath
func (m *metrics) deep(i int) string { return m.mid(i) }

func (m *metrics) mid(i int) string {
	return m.label(i) // want `hot path escapes its annotation: mid calls label`
}

// viaValue calls through a function value: statically unverifiable, so the
// escape hatch fires.
//
//dmp:hotpath
func (m *metrics) viaValue(f func(int) int, i int) int {
	return f(i) // want `call through a function value on a hot path \(viaValue\)`
}

// sanctioned pins the allowlist path for the escape hatch.
//
//dmp:hotpath
func (m *metrics) sanctioned(f func() int) int {
	return f() //dmplint:ignore hotpath-reach fixture: caller contract requires a prebuilt closure
}
