// Package directives exercises the //dmplint:ignore machinery itself: a
// directive that suppresses nothing and a directive without a reason must
// both be reported, so the allowlist cannot rot silently.
package directives

func stale() int {
	//dmplint:ignore detclock nothing on this line or the next violates detclock
	return 1
}

func missingReason() int {
	//dmplint:ignore detclock
	return 2
}
