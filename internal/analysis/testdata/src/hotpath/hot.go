// Package hotpath is the analysistest fixture for the hotpath-alloc
// analyzer. Engine stands in for sim.Engine; only functions annotated
// //dmp:hotpath are checked.
package hotpath

import (
	"fmt"
	"sort"
)

type Engine struct{}

func (e *Engine) Schedule(at float64, fn func()) {}

type item struct{ v int }

func consume(v interface{}) {}

//dmp:hotpath
func sprintfHot(id int) {
	_ = fmt.Sprintf("job %d", id) // want `fmt\.Sprintf allocates its result on every call`
}

//dmp:hotpath
func sprintfPanic(id int) {
	if id < 0 {
		panic(fmt.Sprintf("bad id %d", id)) // a dying path may format its last words
	}
}

//dmp:hotpath
func escapingClosure(e *Engine, id int) {
	e.Schedule(1.0, func() { _ = id }) // want `closure capturing "id" is handed to the event queue`
}

//dmp:hotpath
func stackClosure(xs []int) {
	lo := 0
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] || i > lo }) // immediate call arg: stack-allocated
}

//dmp:hotpath
func storedClosure(id int) func() int {
	f := func() int { return id } // want `closure capturing "id" is stored or returned`
	return f
}

//dmp:hotpath
func unhintedAppend(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want `append to out, declared without capacity`
	}
	return out
}

//dmp:hotpath
func hintedAppend(buf []int, n int) []int {
	out := buf[:0]
	for i := 0; i < n; i++ {
		out = append(out, i) // reuses caller capacity: fine
	}
	return out
}

//dmp:hotpath
func madeWithCap(n int) []int {
	out := make([]int, 0, 16)
	out = append(out, n) // capacity hint present: fine
	return out
}

//dmp:hotpath
func boxingAssign(v item) {
	var x interface{}
	x = v // want `assigning .*item to interface .* boxes the value on the heap`
	_ = x
}

//dmp:hotpath
func boxingCall(n int) {
	consume(n) // want `passing int as interface .* boxes the value on the heap`
}

//dmp:hotpath
func pointerNoBox(p *item) {
	consume(p) // pointers store directly in interfaces: no allocation
}

func walk(fn func(int) bool) {}

//dmp:hotpath
func closureReturn(xs []int) error {
	walk(func(v int) bool { return v > 0 }) // bool answers the closure, not the error result
	return nil
}

// coldSprintf is unannotated: the analyzer must leave it alone.
func coldSprintf(id int) string { return fmt.Sprintf("%d", id) }

//dmp:hotpath
func allowlisted(e *Engine, id int) {
	e.Schedule(2.0, func() { _ = id }) //dmplint:ignore hotpath-alloc fixture: scheduled once per dispatch, not per refresh
}
