// Package cowalias is the analysistest fixture for the cowalias analyzer.
// The ledger struct stands in for cluster.Cluster; only the CoW-shared
// array fields (nodes, key, left, right, bits) are name-matched.
package cowalias

type row struct {
	LocalMB int64
	LentMB  int64
}

type treap struct {
	key   []int64
	left  []int32
	right []int32
	prio  []uint64 // immutable, shared forever: not a CoW field
}

type bitset struct {
	bits []uint64
}

type ledger struct {
	nodes []row
	free  treap
	idle  bitset
}

// install re-points whole slice headers: that is how CoW copies are
// published, and it never touches shared backing. Allowed anywhere.
func (l *ledger) install(n int) {
	l.nodes = make([]row, n)
	l.free.key = make([]int64, n)
	l.free.left = make([]int32, n)
	l.free.right = make([]int32, n)
	l.idle.bits = make([]uint64, (n+63)/64)
}

// stomp writes a node row element directly: a forked branch may still be
// reading this slot.
func (l *ledger) stomp(i int, r row) {
	l.nodes[i] = r // want `element write to CoW-shared nodes in stomp`
}

// poke writes a row field through the element: same store, one selector
// deeper.
func (l *ledger) poke(i int, mb int64) {
	l.nodes[i].LocalMB = mb // want `element write to CoW-shared nodes in poke`
}

// rewire writes the treap child links and keys outside any helper.
func (l *ledger) rewire(n int32) {
	l.free.left[n] = -1  // want `element write to CoW-shared left in rewire`
	l.free.right[n] = -1 // want `element write to CoW-shared right in rewire`
	l.free.key[n]++      // want `element write to CoW-shared key in rewire`
}

// mask compound-assigns a bitset word: reads old, writes new, both on the
// shared backing.
func (l *ledger) mask(w int, m uint64) {
	l.idle.bits[w] |= m // want `element write to CoW-shared bits in mask`
}

// sneak takes a writable alias with &nodes[i] and writes through it,
// bypassing the shared→private transition entirely.
func (l *ledger) sneak(i int, mb int64) {
	n := &l.nodes[i]
	n.LocalMB += mb // want `write through n, an alias of CoW-shared nodes, in sneak`
}

// peek takes the same alias but only reads: the read-only prelude idiom is
// free.
func (l *ledger) peek(i int) int64 {
	n := &l.nodes[i]
	return n.LocalMB + n.LentMB
}

// rebind shadows a read-only alias with a fresh variable and writes through
// the new one, which is no alias at all: objects, not names, decide.
func (l *ledger) rebind(i int, spare *row, mb int64) {
	if n := &l.nodes[i]; n.LocalMB > 0 {
		_ = n
	}
	n := spare
	n.LocalMB = mb
}

// prioStore writes the immutable-priority array, which is not CoW state.
func (l *ledger) prioStore(n int32, p uint64) {
	l.free.prio[n] = p
}

// thaw is a sanctioned helper: annotated, it may store elements after
// (fixture-notionally) privatising the arrays.
//
//dmp:cowsafe
func (l *ledger) thaw(i int, r row) {
	l.nodes = append([]row(nil), l.nodes...)
	l.nodes[i] = r
}

// idleFixture is annotated but performs no restricted write: the stale
// directive is itself reported.
//
//dmp:cowsafe
func (l *ledger) idleFixture() int { // want `stale //dmp:cowsafe on idleFixture`
	return len(l.nodes)
}

// excused carries an explicit allowlist entry; the suppression must hold
// and must not be reported stale.
func (l *ledger) excused(i int, mb int64) {
	l.nodes[i].LentMB = mb //dmplint:ignore cowalias fixture pins the allowlist path
}
