// Package nilsafe is the analysistest fixture for the nilsafe-emit
// analyzer: Recorder is a stand-in for the telemetry recorder.
package nilsafe

type Recorder struct {
	n   int
	now float64
}

// Emit is correctly guarded: first statement is the nil check.
func (r *Recorder) Emit(k string) {
	if r == nil {
		return
	}
	r.n++
}

// PoolCheck ORs the guard with a cheap early-out, as the real one does.
func (r *Recorder) PoolCheck(free, capacity int64) {
	if r == nil || capacity <= 0 {
		return
	}
	r.n++
}

func (r *Recorder) Unguarded(k string) { // want `Recorder\.Unguarded does not start with the nil-receiver guard`
	r.n++
}

func (r Recorder) ValueRecv() int { // want `Recorder\.ValueRecv uses a value receiver`
	return r.n
}

func (*Recorder) Discarded() {} // want `Recorder\.Discarded discards its receiver`

// reset is unexported: internal helpers run after the public guard.
func (r *Recorder) reset() { r.n = 0 }

//dmplint:ignore nilsafe-emit fixture: guard intentionally elided under test
func (r *Recorder) Allowlisted() {
	r.n++
}

func caller(r *Recorder, work map[string]int) {
	if r != nil { // want `redundant nil check around r\.Emit`
		r.Emit("x")
	}
	if r != nil {
		// Guarding a block (skipping argument assembly, not just the call)
		// is the sanctioned use of an explicit nil check.
		n := len(work)
		r.Emit("y")
		_ = n
	}
	r.Emit("z") // the normal path: call straight through the internal guard
}
