// Package ctxflow is the analysistest fixture for the ctxflow analyzer. The
// ResponseWriter/Request stand-ins avoid loading net/http through the source
// importer; handler detection is by type name, like the rest of dmplint's
// fixture-facing matching.
package ctxflow

import "context"

type ResponseWriter interface{ Write([]byte) (int, error) }

type Request struct{ ctx context.Context }

func (r *Request) Context() context.Context { return r.ctx }

type server struct {
	base context.Context
}

// run stands in for the blocking work a handler dispatches.
func (s *server) run(ctx context.Context, n int) int {
	<-ctx.Done()
	return n
}

// HandleGood threads the request context: clean.
func (s *server) HandleGood(w ResponseWriter, req *Request) {
	s.run(req.Context(), 1)
}

// HandleFresh mints a root context on the request path.
func (s *server) HandleFresh(w ResponseWriter, req *Request) {
	s.run(context.Background(), 1) // want `context.Background\(\) in HandleFresh, which is reachable from an HTTP handler; thread the request context instead`
}

// HandleStored hands a stored context to the work.
func (s *server) HandleStored(w ResponseWriter, req *Request) {
	s.run(s.base, 1) // want `context read from field s.base passed to s.run on a handler-reachable path; plumb the request context instead`
}

// helper is one hop from a handler: reachability, not annotation, decides.
func (s *server) helper(n int) {
	s.run(context.TODO(), n) // want `context.TODO\(\) in helper, which is reachable from an HTTP handler; thread the request context instead`
}

func (s *server) HandleHop(w ResponseWriter, req *Request) { s.helper(2) }

// HandleNil drops the context entirely.
func (s *server) HandleNil(w ResponseWriter, req *Request) {
	s.run(nil, 3) // want `nil context passed to s.run on a handler-reachable path; pass the request context`
}

// offPath is reachable from no handler: a root context is fine here.
func (s *server) offPath() int {
	return s.run(context.Background(), 0)
}

// HandleJoin is the sanctioned detachment seam, allowlisted with a reason.
func (s *server) HandleJoin(w ResponseWriter, req *Request) {
	s.run(s.base, 4) //dmplint:ignore ctxflow fixture: join seam must outlive any one request
}

// wired exercises the field-wiring expansion: execute is only reachable
// through a function-typed field.
type wired struct {
	fn func(ctx context.Context, n int) int
}

func newWired(s *server) *wired { return &wired{fn: s.execute} }

func (s *server) execute(ctx context.Context, n int) int {
	return s.run(context.Background(), n) // want `context.Background\(\) in execute, which is reachable from an HTTP handler; thread the request context instead`
}

func (s *server) HandleWired(w ResponseWriter, req *Request) {
	nw := newWired(s)
	nw.fn(req.Context(), 5)
}

var _ = (&server{}).offPath
