package analysis_test

import (
	"testing"

	"dismem/internal/analysis"
	"dismem/internal/analysis/analysistest"
)

func TestDetClock(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DetClock, "detclock")
}

// TestGuardedPath pins the package selection: detclock applies to the seven
// deterministic simulator packages of any module (the match is by path
// segment, so fixture modules qualify too), and nowhere else.
func TestGuardedPath(t *testing.T) {
	guarded := []string{
		"dismem/internal/core",
		"dismem/internal/sched",
		"dismem/internal/cluster",
		"dismem/internal/policy",
		"dismem/internal/slowdown",
		"dismem/internal/sim",
		"dismem/internal/telemetry",
		"dmplintfix/internal/core",
		"internal/core",
	}
	for _, p := range guarded {
		if !analysis.GuardedPath(p) {
			t.Errorf("GuardedPath(%q) = false, want true", p)
		}
	}
	open := []string{
		"dismem",
		"dismem/internal/experiments",
		"dismem/internal/tracegen",
		"dismem/internal/workload",
		"dismem/internal/sweep",
		"dismem/internal/corelike",
		"dismem/cmd/dmpsim",
		// The service layer is deliberately unguarded: request latencies
		// and Retry-After hints are wall-clock concerns. The simulation
		// path it calls into stays guarded.
		"dismem/internal/server",
		"dismem/cmd/dmpd",
	}
	for _, p := range open {
		if analysis.GuardedPath(p) {
			t.Errorf("GuardedPath(%q) = true, want false", p)
		}
	}
}
