package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string // directory the sources were read from
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module without any external
// dependency: imports inside the module are resolved recursively from the
// module directory; standard-library imports go through the stdlib source
// importer. Loaded packages are cached, so a whole-module run type-checks
// each package (and each stdlib dependency) once.
//
// The loader deliberately analyzes non-test sources only: the determinism
// invariants protect the code that runs inside a simulation, and test files
// legitimately use wall clocks, t.TempDir, and unsorted iteration.
type Loader struct {
	ModulePath string // e.g. "dismem"
	ModuleDir  string // absolute directory of go.mod

	Fset *token.FileSet

	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import cycle detection
	std     types.Importer
}

// NewLoader builds a loader rooted at moduleDir for the given module path.
func NewLoader(modulePath, moduleDir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		Fset:       fset,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		std:        importer.ForCompiler(fset, "source", nil),
	}
}

// Load parses and type-checks the package at the given import path, which
// must be the module path itself or below it. Results are cached.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("dmplint: import path %q is outside module %s", path, l.ModulePath)
	}
	return l.LoadDir(path, dir)
}

// LoadDir parses and type-checks the package in dir under the given import
// path. It is the primitive Load builds on; tests use it directly to load
// fixture packages from testdata directories.
func (l *Loader) LoadDir(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("dmplint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("dmplint: no non-test Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &loaderImporter{l: l},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		// A package that does not type-check cannot be trusted to analyze;
		// surface the first few errors rather than a wall.
		msgs := make([]string, 0, 3)
		for i, e := range typeErrs {
			if i == 3 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-3))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("dmplint: type-checking %s failed:\n  %s", path, strings.Join(msgs, "\n  "))
	}

	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// parseDir parses every non-test .go file in dir, with comments (the
// analyzers read //dmp:hotpath and //dmplint:ignore directives).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter adapts the Loader to the go/types Importer interface:
// module-local paths load recursively from source, everything else falls
// through to the standard-library source importer.
type loaderImporter struct {
	l *Loader
}

func (i *loaderImporter) Import(path string) (*types.Package, error) {
	if _, ok := i.l.dirFor(path); ok {
		p, err := i.l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if from, ok := i.l.std.(types.ImporterFrom); ok {
		return from.ImportFrom(path, i.l.ModuleDir, 0)
	}
	return i.l.std.Import(path)
}
