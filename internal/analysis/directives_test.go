package analysis_test

import (
	"strings"
	"testing"

	"dismem/internal/analysis"
	"dismem/internal/analysis/analysistest"
)

// TestDirectiveHygiene pins the allowlist's self-policing: a stale
// //dmplint:ignore (suppressing nothing) and a malformed one (no reason)
// are themselves diagnostics, attributed to the pseudo-analyzer "dmplint".
func TestDirectiveHygiene(t *testing.T) {
	diags, err := analysistest.Findings("testdata", analysis.DetClock, "directives")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (stale + malformed):\n%v", len(diags), diags)
	}
	var sawStale, sawMalformed bool
	for _, d := range diags {
		if d.Analyzer != "dmplint" {
			t.Errorf("directive diagnostic attributed to %q, want pseudo-analyzer dmplint", d.Analyzer)
		}
		switch {
		case strings.Contains(d.Message, "stale"):
			sawStale = true
			if d.Line != 7 {
				t.Errorf("stale directive reported at line %d, want 7", d.Line)
			}
		case strings.Contains(d.Message, "reason"):
			sawMalformed = true
			if d.Line != 12 {
				t.Errorf("malformed directive reported at line %d, want 12", d.Line)
			}
		default:
			t.Errorf("unrecognised directive diagnostic: %s", d)
		}
	}
	if !sawStale || !sawMalformed {
		t.Errorf("stale=%v malformed=%v, want both reported", sawStale, sawMalformed)
	}
}
