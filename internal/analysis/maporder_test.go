package analysis_test

import (
	"testing"

	"dismem/internal/analysis"
	"dismem/internal/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapOrder, "maporder")
}
