package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CowSafeDirective marks a function as a sanctioned writer of copy-on-write
// shared ledger structures: either it IS the shared→private transition
// (Cluster.own/materialize/thaw), it builds the arrays before any fork can
// exist (constructors, index init), or it is an index mutator whose callers
// established ownership first (the treap and bitset write paths, reached
// only through own()).
const CowSafeDirective = "dmp:cowsafe"

// cowSharedFields are the ledger structures a cluster fork shares with its
// base until thawed: the node ledger slice, the per-shard treap arrays
// (free-memory keys and child links), and the idle bitset words. Matching
// is by field name, like domainmerge's, so the fixture can define
// lightweight stand-ins.
var cowSharedFields = map[string]bool{
	"nodes": true, // node ledger rows
	"key":   true, // treap free-memory keys
	"left":  true, // treap child links
	"right": true,
	"bits":  true, // idle bitset words
}

// CowAlias enforces the copy-on-write mutation discipline of the cluster
// ledger (see internal/cluster/cow.go): after Fork, the node slice and each
// shard's index arrays may be aliased by any number of concurrently running
// branches, and the ONLY safe write path is through the CoW helpers that
// privatise a structure before its first write. Two write shapes are
// therefore restricted to functions annotated //dmp:cowsafe:
//
//   - element stores into a shared array (c.nodes[i] = …, ix.left[n] = …,
//     s.bits[w] |= …, including compound assignment and ++/--), and
//   - writes through an alias taken with &shared[i] in the same function
//     (n := &c.nodes[id]; n.LocalMB += mb), which bypass own() entirely.
//
// Re-pointing a whole slice header (c.nodes = append(…), sh.free.key = …)
// is allowed anywhere: it replaces the header without touching the shared
// backing array — it is how the CoW copies themselves are installed. Reads,
// including read-only &shared[i] preludes, are free.
//
// A write outside an annotated function is a latent cross-branch race: it
// mutates memory another branch may be reading, exactly the bug class the
// fork differential suite under -race can detect but not localize.
// Symmetrically, an annotated function that performs no restricted write is
// reported as stale.
var CowAlias = &Analyzer{
	Name: "cowalias",
	Doc: "writes to copy-on-write shared ledger structures (node rows, treap key/left/right " +
		"arrays, idle bitset words) must go through the CoW mutation helpers: element stores " +
		"and &elem alias writes are allowed only in functions annotated //dmp:cowsafe",
	PathFilter: cowClusterPath,
	Run:        runCowAlias,
}

// cowClusterPath admits only the cluster ledger package, where the CoW
// structures live; the fixture module bypasses the filter via analysistest.
func cowClusterPath(path string) bool {
	const cl = "internal/cluster"
	return path == cl || strings.HasSuffix(path, "/"+cl) ||
		strings.Contains(path, "/"+cl+"/")
}

func runCowAlias(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCowAlias(pass, fn)
		}
	}
}

func checkCowAlias(pass *Pass, fn *ast.FuncDecl) {
	annotated := funcDocHasDirective(fn, CowSafeDirective)
	writes := 0

	// Pre-pass: identifiers bound to &shared[i] in this function. Writes
	// through them are writes to the shared array under another name.
	aliases := make(map[types.Object]string)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			un, ok := rhs.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			sel := cowElementTarget(pass, un.X)
			if sel == nil {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					aliases[obj] = sel.Sel.Name
				}
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				writes += checkCowWrite(pass, fn, annotated, lhs, aliases)
			}
		case *ast.IncDecStmt:
			writes += checkCowWrite(pass, fn, annotated, st.X, aliases)
		}
		return true
	})

	if annotated && writes == 0 {
		pass.Reportf(fn.Pos(),
			"stale //dmp:cowsafe on %s: the function writes no copy-on-write shared state",
			fn.Name.Name)
	}
}

// checkCowWrite classifies one assignment target and reports it when it
// stores into CoW-shared backing outside an annotated function. Returns 1
// for a restricted write (reported or sanctioned), 0 otherwise.
func checkCowWrite(pass *Pass, fn *ast.FuncDecl, annotated bool, lhs ast.Expr, aliases map[types.Object]string) int {
	if sel := cowElementTarget(pass, lhs); sel != nil {
		if !annotated {
			pass.Reportf(lhs.Pos(),
				"element write to CoW-shared %s in %s, which is not a sanctioned mutation helper: "+
					"a forked branch may still share this array; privatise via own/thaw first and "+
					"annotate the helper //dmp:cowsafe",
				sel.Sel.Name, fn.Name.Name)
		}
		return 1
	}
	if id, field := cowAliasWriteBase(pass, lhs, aliases); id != nil {
		if !annotated {
			pass.Reportf(lhs.Pos(),
				"write through %s, an alias of CoW-shared %s, in %s: taking &%s[i] bypasses the "+
					"shared→private transition; obtain the row from own() or annotate //dmp:cowsafe",
				id.Name, field, fn.Name.Name, field)
		}
		return 1
	}
	return 0
}

// cowElementTarget resolves an expression to the CoW array selector whose
// backing it stores into: an index expression over a shared field, possibly
// under further selectors or indexes (c.nodes[i].LocalMB). A bare selector
// without an index is a slice-header re-point, not an element store, and
// resolves to nil.
func cowElementTarget(pass *Pass, e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			if sel, ok := x.X.(*ast.SelectorExpr); ok && isCowSharedField(pass, sel) {
				return sel
			}
			e = x.X
		default:
			return nil
		}
	}
}

// cowAliasWriteBase resolves an assignment target to the alias variable it
// writes through, when the base identifier was bound to &shared[i] earlier
// in the function. A bare identifier target is a rebinding of the variable,
// not a write through it, and resolves to nil.
func cowAliasWriteBase(pass *Pass, lhs ast.Expr, aliases map[types.Object]string) (*ast.Ident, string) {
	indirect := false
	for {
		switch x := lhs.(type) {
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
			indirect = true
		case *ast.SelectorExpr:
			lhs = x.X
			indirect = true
		case *ast.IndexExpr:
			lhs = x.X
			indirect = true
		case *ast.Ident:
			if !indirect {
				return nil, ""
			}
			// The types.Object disambiguates shadowed names, so a
			// read-only prelude alias in one scope never taints a
			// same-named owned row in another.
			if obj := pass.TypesInfo.ObjectOf(x); obj != nil {
				if field, ok := aliases[obj]; ok {
					return x, field
				}
			}
			return nil, ""
		default:
			return nil, ""
		}
	}
}

// isCowSharedField reports whether sel selects a struct field carrying one
// of the CoW-shared array names. Matching is by field name, like
// domainmerge's, so the fixture can define a lightweight stand-in.
func isCowSharedField(pass *Pass, sel *ast.SelectorExpr) bool {
	if !cowSharedFields[sel.Sel.Name] {
		return false
	}
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		return s.Kind() == types.FieldVal
	}
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	return ok && v.IsField()
}
