package analysis_test

import (
	"testing"

	"dismem/internal/analysis"
	"dismem/internal/analysis/analysistest"
)

func TestDomainMerge(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DomainMerge, "domainmerge")
}

func TestDomainMergePathFilter(t *testing.T) {
	cases := map[string]bool{
		"internal/core":                true,
		"dismem/internal/core":         true,
		"dismem/internal/core/sub":     true,
		"dismem/internal/policy":       false,
		"dismem/internal/coreutils":    false,
		"example.com/x/internal/core":  true,
		"example.com/x/internal/sched": false,
	}
	for path, want := range cases {
		if got := analysis.DomainMerge.PathFilter(path); got != want {
			t.Errorf("PathFilter(%q) = %v, want %v", path, got, want)
		}
	}
}
