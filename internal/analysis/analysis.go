// Package analysis is dismem's static-analysis layer: a small, dependency-free
// framework in the shape of golang.org/x/tools/go/analysis, plus the ten
// repo-specific analyzers (detclock, maporder, nilsafe-emit, hotpath-alloc,
// domainmerge, cowalias, guardedby, atomiconly, ctxflow, hotpath-reach) that
// turn the simulator's hand-maintained determinism, hot-path,
// pressure-domain, copy-on-write, and concurrency-discipline invariants into
// compile-time diagnostics.
//
// The per-function checks see one package at a time; the interprocedural
// ones (guardedby, atomiconly, ctxflow, hotpath-reach) work over a Module —
// all loaded packages plus a lazily-built whole-module call graph and a
// shared fact cache — so lock obligations, atomic-access contracts, and
// hot-path reachability propagate across function and package boundaries.
//
// The runtime differential, golden-digest, and -race tests detect these bug
// classes but cannot localize them; the analyzers point at the exact line.
// They run as `go run ./cmd/dmplint ./...` and as a required CI step.
//
// The framework mirrors the x/tools Analyzer/Pass/Diagnostic split so the
// analyzers could be ported to a real multichecker verbatim if the dependency
// ever becomes available; it is hand-rolled here because the module must stay
// dependency-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dmplint:ignore directives.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// PathFilter restricts which package import paths the driver runs this
	// analyzer on. Nil means every package. Tests bypass the filter by
	// invoking the analyzer directly.
	PathFilter func(pkgPath string) bool

	// Run inspects one type-checked package and reports findings via
	// pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Module is the whole target set of the run; interprocedural analyzers
	// reach the call graph and module-wide fact indexes through it. Always
	// non-nil: single-package entry points wrap the package in a singleton
	// module.
	Module *Module

	pkg   *Package
	diags []Diagnostic
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// Pos renders the diagnostic position as file:line:col.
func (d Diagnostic) Pos() string {
	return fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col)
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos(), d.Message, d.Analyzer)
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant shorthand for p.TypesInfo.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// IgnoreDirective is the allowlist escape hatch: a comment of the form
//
//	//dmplint:ignore <analyzer> <reason>
//
// suppresses that analyzer's diagnostics on the same source line and on the
// line immediately below (so the directive can trail the flagged statement or
// sit on its own line above it). The reason is mandatory: a bare directive is
// itself reported, keeping every suppression auditable.
const IgnoreDirective = "dmplint:ignore"

// suppression is one parsed //dmplint:ignore directive.
type suppression struct {
	file     string
	line     int    // line the directive appears on
	analyzer string // analyzer name, or "*" for all
	reason   string
	used     bool
}

// collectSuppressions scans all comments of the files for ignore directives.
// Malformed directives (no analyzer, or no reason) are reported as
// diagnostics of the pseudo-analyzer "dmplint" so they cannot silently
// disable nothing — or everything.
func collectSuppressions(fset *token.FileSet, files []*ast.File) (sups []*suppression, malformed []Diagnostic) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, IgnoreDirective))
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "dmplint",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed //dmplint:ignore: want \"//dmplint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				sups = append(sups, &suppression{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return sups, malformed
}

// applySuppressions filters diags through the directives, marking each
// directive that fired. Directives that suppress nothing are reported: a
// stale allowlist entry usually means the code it excused has moved.
func applySuppressions(diags []Diagnostic, sups []*suppression) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, s := range sups {
			if s.file != d.File {
				continue
			}
			if s.analyzer != "*" && s.analyzer != d.Analyzer {
				continue
			}
			if d.Line == s.line || d.Line == s.line+1 {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, s := range sups {
		if !s.used {
			kept = append(kept, Diagnostic{
				Analyzer: "dmplint",
				File:     s.file,
				Line:     s.line,
				Col:      1,
				Message: fmt.Sprintf("stale //dmplint:ignore %s: no %s diagnostic here to suppress",
					s.analyzer, s.analyzer),
			})
		}
	}
	return kept
}

// RunAnalyzers applies every analyzer whose PathFilter admits the package,
// then filters the findings through the package's //dmplint:ignore
// directives. The returned diagnostics are sorted by position. The package
// is treated as a module of one: interprocedural analyzers see a call graph
// limited to it. Whole-module runs go through RunModule instead.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return runPackage(NewModule([]*Package{pkg}), pkg, analyzers)
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// All returns the full dmplint analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DetClock, MapOrder, NilSafeEmit, HotPathAlloc, DomainMerge, CowAlias,
		GuardedBy, AtomicOnly, CtxFlow, HotPathReach,
	}
}

// guardedPackages are the deterministic simulator packages: everything that
// executes between Simulator.Run entering and the Result/telemetry stream
// leaving must be a pure function of (Config, jobs, Seed). detclock enforces
// that on these import-path segments; the match is by path segment so the
// analyzer applies equally to the real module and to test fixture modules.
var guardedPackages = []string{
	"internal/core",
	"internal/sched",
	"internal/cluster",
	"internal/policy",
	"internal/slowdown",
	"internal/sim",
	"internal/telemetry",
}

// GuardedPath reports whether the import path belongs to the deterministic
// simulator core.
func GuardedPath(path string) bool {
	for _, g := range guardedPackages {
		if path == g || strings.HasSuffix(path, "/"+g) ||
			strings.Contains(path, "/"+g+"/") || strings.HasPrefix(path, g+"/") {
			return true
		}
	}
	return false
}
