package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags range-over-map loops whose bodies are sensitive to
// iteration order: appending into a slice that outlives the loop, emitting
// telemetry, accumulating a floating-point value (float addition is not
// associative, so order changes the bits), or scheduling simulation events.
// The sanctioned pattern — collect the keys, sort, then iterate the sorted
// slice — is recognised: an append whose target is sorted later in the same
// block is not flagged.
//
// This is exactly the bug class the incremental-refresh work (PR 4) guards
// against at runtime with 30-seed differential tests; the analyzer localizes
// it at compile time.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map bodies that append to escaping slices, emit telemetry, " +
		"accumulate floats, or schedule events: map iteration order is nondeterministic; " +
		"collect and sort keys first",
	Run: runMapOrder,
}

// recorderReadOnly lists Recorder methods that read state without emitting;
// calling them in map order is harmless.
var recorderReadOnly = map[string]bool{
	"Now": true, "SampleInterval": true, "Count": true,
	"TotalEvents": true, "Err": true, "Series": true,
}

// engineScheduling lists the Engine methods that enqueue, move, or dispatch
// events; their relative order decides tie-breaking between same-time
// events. ScheduleTag/AfterTag assign seqs exactly as their untagged forms
// do, and FireWindowed dispatches a popped window member — calling any of
// them from a map range would order the schedule (or the firing of a
// window) by map iteration, which varies run to run.
var engineScheduling = map[string]bool{
	"Schedule": true, "After": true, "Every": true, "Reschedule": true,
	"ScheduleTag": true, "AfterTag": true, "FireWindowed": true,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, st := range list {
				if ls, ok := st.(*ast.LabeledStmt); ok {
					st = ls.Stmt
				}
				rs, ok := st.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				checkMapRangeBody(pass, rs, list[i+1:])
			}
			return true
		})
	}
}

// checkMapRangeBody inspects one map-range body for order-sensitive sinks.
// following holds the statements after the loop in the same block, consulted
// for the collect-then-sort idiom.
func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, following []ast.Stmt) {
	rangedOver := types.ExprString(rs.X)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if isBuiltinAppend(pass, node) && len(node.Args) > 0 {
				target := node.Args[0]
				// A slice born inside the loop body dies each iteration;
				// only appends into longer-lived slices leak map order.
				if obj := identObj(pass, target); obj != nil && posWithin(rs.Body, obj) {
					return true
				}
				if sortedAfter(pass, target, following) {
					return true
				}
				pass.Reportf(node.Pos(),
					"append to %s inside range over map %s: iteration order is nondeterministic; "+
						"collect keys into a slice and sort before iterating",
					types.ExprString(target), rangedOver)
				return true
			}
			if _, typeName, method, ok := methodCall(pass, node); ok {
				switch {
				case typeName == "Recorder" && !recorderReadOnly[method]:
					pass.Reportf(node.Pos(),
						"telemetry %s emitted inside range over map %s: the event stream would "+
							"depend on map iteration order; iterate sorted keys instead",
						method, rangedOver)
				case typeName == "Engine" && engineScheduling[method]:
					pass.Reportf(node.Pos(),
						"Engine.%s called inside range over map %s: same-time events would fire "+
							"in map iteration order; iterate sorted keys instead",
						method, rangedOver)
				}
			}
		case *ast.AssignStmt:
			checkFloatAccum(pass, node, rs, rangedOver)
		case *ast.IncDecStmt:
			if isFloat(pass.TypeOf(node.X)) && !declaredIn(pass, node.X, rs.Body) {
				pass.Reportf(node.Pos(),
					"floating-point accumulation into %s inside range over map %s: float addition "+
						"is not associative, so map order changes the result bits",
					types.ExprString(node.X), rangedOver)
			}
		}
		return true
	})
}

// checkFloatAccum flags `x += f`, `x -= f`, `x *= f`, `x /= f` and the
// spelled-out `x = x + f` forms when x is floating point and outlives the
// loop body.
func checkFloatAccum(pass *Pass, as *ast.AssignStmt, rs *ast.RangeStmt, rangedOver string) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	lhs := as.Lhs[0]
	if !isFloat(pass.TypeOf(lhs)) || declaredIn(pass, lhs, rs.Body) {
		return
	}
	accumulates := false
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		accumulates = true
	case token.ASSIGN:
		if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok {
			switch bin.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				l := types.ExprString(lhs)
				accumulates = types.ExprString(bin.X) == l || types.ExprString(bin.Y) == l
			}
		}
	}
	if accumulates {
		pass.Reportf(as.Pos(),
			"floating-point accumulation into %s inside range over map %s: float addition is "+
				"not associative, so map order changes the result bits; iterate sorted keys",
			types.ExprString(lhs), rangedOver)
	}
}

// declaredIn reports whether e's root identifier is declared inside node.
// Field selectors and index expressions resolve to their base (p.T → p), so
// accumulating into a field of a body-local loop copy stays exempt: each map
// entry is visited exactly once, making per-entry targets order-independent.
func declaredIn(pass *Pass, e ast.Expr, node ast.Node) bool {
	obj := identObj(pass, rootExpr(e))
	return obj != nil && posWithin(node, obj)
}

// rootExpr strips selectors, indexing, dereferences, and parens down to the
// base expression.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return e
		}
	}
}

// sortFuncs lists the sort/slices entry points that establish a
// deterministic order over a collected slice.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Ints": true, "Strings": true, "Float64s": true,
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether one of the statements after the loop sorts the
// append target — the collect-then-sort idiom. The target match is textual
// (types.ExprString), which also sees through wrappers like
// sort.Sort(sort.IntSlice(ids)).
func sortedAfter(pass *Pass, target ast.Expr, following []ast.Stmt) bool {
	want := types.ExprString(target)
	for _, st := range following {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			pkgPath, name, ok := pkgFuncCall(pass, call)
			if !ok || !sortFuncs[pkgPath][name] {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if e, isExpr := a.(ast.Expr); isExpr && types.ExprString(e) == want {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
