package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// pkgFuncCall resolves call as pkg.Func(...) where pkg is an imported
// package name, returning the package's import path and the function name.
// Resolution goes through types.Info.Uses, so import aliases and shadowed
// identifiers are handled correctly.
func pkgFuncCall(pass *Pass, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	return pkgFuncCallInfo(pass.TypesInfo, call)
}

// pkgFuncCallInfo is pkgFuncCall for contexts that have type info but no
// Pass (module-wide index builders).
func pkgFuncCallInfo(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, ok2 := call.Fun.(*ast.SelectorExpr)
	if !ok2 {
		return "", "", false
	}
	ident, ok2 := sel.X.(*ast.Ident)
	if !ok2 {
		return "", "", false
	}
	pkgName, ok2 := info.Uses[ident].(*types.PkgName)
	if !ok2 {
		return "", "", false
	}
	return pkgName.Imported().Path(), sel.Sel.Name, true
}

// methodCall resolves call as x.M(...) where x is a value (not a package),
// returning the name of x's named type (pointers dereferenced) and the
// method name. The type name alone is deliberately the key: dmplint's
// contracts are about the repo's Recorder and Engine types, and name-based
// matching lets the analyzer fixtures define lightweight stand-ins.
func methodCall(pass *Pass, call *ast.CallExpr) (recv ast.Expr, typeName, method string, ok bool) {
	sel, ok2 := call.Fun.(*ast.SelectorExpr)
	if !ok2 {
		return nil, "", "", false
	}
	if ident, isIdent := sel.X.(*ast.Ident); isIdent {
		if _, isPkg := pass.TypesInfo.Uses[ident].(*types.PkgName); isPkg {
			return nil, "", "", false
		}
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return nil, "", "", false
	}
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok2 := t.(*types.Named)
	if !ok2 {
		return nil, "", "", false
	}
	return sel.X, named.Obj().Name(), sel.Sel.Name, true
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if obj, found := pass.TypesInfo.Uses[ident]; found {
		b, isBuiltin := obj.(*types.Builtin)
		return isBuiltin && b.Name() == "append"
	}
	return false
}

// identObj returns the types.Object an identifier expression resolves to,
// or nil for non-identifiers.
func identObj(pass *Pass, e ast.Expr) types.Object {
	ident, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj, found := pass.TypesInfo.Uses[ident]; found {
		return obj
	}
	return pass.TypesInfo.Defs[ident]
}

// posWithin reports whether pos lies inside node's source range.
func posWithin(node ast.Node, obj types.Object) bool {
	return obj != nil && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// isFloat reports whether t is a floating-point basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// quotedList renders names as `"a", "b", "c"` for diagnostics.
func quotedList(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += `"` + n + `"`
	}
	return out
}

// renderExpr flattens a pure identifier/selector chain to its source
// spelling ("st", "c.cache", "(*p).x" as "p.x"). Expressions containing
// calls, indexes, or literals are not stable names and render as "".
func renderExpr(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := renderExpr(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return renderExpr(x.X)
	case *ast.StarExpr:
		return renderExpr(x.X)
	}
	return ""
}

// fieldDirective scans a struct field's doc and trailing comments for the
// given //-directive, with or without a parenthesized argument:
//
//	n int //dmp:guardedby(mu)   -> arg "mu", ok
//	n int //dmp:atomiconly      -> arg "",  ok
//
// The first matching comment wins.
func fieldDirective(field *ast.Field, directive string) (arg string, pos token.Pos, ok bool) {
	return directiveIn(directive, field.Doc, field.Comment)
}

// specDirective is fieldDirective for package-level var specs.
func specDirective(spec *ast.ValueSpec, directive string) (arg string, pos token.Pos, ok bool) {
	return directiveIn(directive, spec.Doc, spec.Comment)
}

func directiveIn(directive string, groups ...*ast.CommentGroup) (arg string, pos token.Pos, ok bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, found := strings.CutPrefix(text, directive)
			if !found {
				continue
			}
			// Three shapes: bare, bare + trailing prose, and "(arg)" with
			// optional trailing prose. The arg ends at the FIRST close paren
			// so prose after the directive may itself contain parens.
			switch {
			case rest == "":
				return "", c.Pos(), true
			case strings.HasPrefix(rest, " ") || strings.HasPrefix(rest, "\t"):
				return "", c.Pos(), true
			case strings.HasPrefix(rest, "("):
				if i := strings.Index(rest, ")"); i > 0 {
					return strings.TrimSpace(rest[1:i]), c.Pos(), true
				}
			}
		}
	}
	return "", token.NoPos, false
}

// namedIn reports whether t (pointers dereferenced) is the named type
// pkgPath.name, and returns the dereferenced named type.
func namedIn(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// typeIn reports whether t (pointers dereferenced) is any named type
// declared in the package with the given import path.
func typeIn(t types.Type, pkgPath string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// funcDocHasDirective reports whether the function's doc comment contains
// the given //-directive (e.g. "dmp:hotpath").
func funcDocHasDirective(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := c.Text
		if len(text) >= 2 && text[:2] == "//" {
			text = text[2:]
		}
		for len(text) > 0 && (text[0] == ' ' || text[0] == '\t') {
			text = text[1:]
		}
		if text == directive {
			return true
		}
	}
	return false
}
