package analysis

import (
	"go/ast"
	"go/types"
)

// pkgFuncCall resolves call as pkg.Func(...) where pkg is an imported
// package name, returning the package's import path and the function name.
// Resolution goes through types.Info.Uses, so import aliases and shadowed
// identifiers are handled correctly.
func pkgFuncCall(pass *Pass, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, ok2 := call.Fun.(*ast.SelectorExpr)
	if !ok2 {
		return "", "", false
	}
	ident, ok2 := sel.X.(*ast.Ident)
	if !ok2 {
		return "", "", false
	}
	pkgName, ok2 := pass.TypesInfo.Uses[ident].(*types.PkgName)
	if !ok2 {
		return "", "", false
	}
	return pkgName.Imported().Path(), sel.Sel.Name, true
}

// methodCall resolves call as x.M(...) where x is a value (not a package),
// returning the name of x's named type (pointers dereferenced) and the
// method name. The type name alone is deliberately the key: dmplint's
// contracts are about the repo's Recorder and Engine types, and name-based
// matching lets the analyzer fixtures define lightweight stand-ins.
func methodCall(pass *Pass, call *ast.CallExpr) (recv ast.Expr, typeName, method string, ok bool) {
	sel, ok2 := call.Fun.(*ast.SelectorExpr)
	if !ok2 {
		return nil, "", "", false
	}
	if ident, isIdent := sel.X.(*ast.Ident); isIdent {
		if _, isPkg := pass.TypesInfo.Uses[ident].(*types.PkgName); isPkg {
			return nil, "", "", false
		}
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return nil, "", "", false
	}
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok2 := t.(*types.Named)
	if !ok2 {
		return nil, "", "", false
	}
	return sel.X, named.Obj().Name(), sel.Sel.Name, true
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if obj, found := pass.TypesInfo.Uses[ident]; found {
		b, isBuiltin := obj.(*types.Builtin)
		return isBuiltin && b.Name() == "append"
	}
	return false
}

// identObj returns the types.Object an identifier expression resolves to,
// or nil for non-identifiers.
func identObj(pass *Pass, e ast.Expr) types.Object {
	ident, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj, found := pass.TypesInfo.Uses[ident]; found {
		return obj
	}
	return pass.TypesInfo.Defs[ident]
}

// posWithin reports whether pos lies inside node's source range.
func posWithin(node ast.Node, obj types.Object) bool {
	return obj != nil && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// isFloat reports whether t is a floating-point basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// quotedList renders names as `"a", "b", "c"` for diagnostics.
func quotedList(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += `"` + n + `"`
	}
	return out
}

// funcDocHasDirective reports whether the function's doc comment contains
// the given //-directive (e.g. "dmp:hotpath").
func funcDocHasDirective(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := c.Text
		if len(text) >= 2 && text[:2] == "//" {
			text = text[2:]
		}
		for len(text) > 0 && (text[0] == ' ' || text[0] == '\t') {
			text = text[1:]
		}
		if text == directive {
			return true
		}
	}
	return false
}
