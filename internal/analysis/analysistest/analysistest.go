// Package analysistest runs dmplint analyzers over fixture packages and
// checks their diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest convention:
//
//	time.Now() // want `time\.Now reads the wall clock`
//
// A fixture line may carry several quoted expectations. Diagnostics without
// a matching want, and wants without a matching diagnostic, both fail the
// test. //dmplint:ignore directives are honoured exactly as in production,
// so fixtures also pin the allowlist behaviour: a suppressed violation must
// produce no diagnostic, and a stale directive is itself a diagnostic.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"dismem/internal/analysis"
)

// Run loads each fixture package below dir/src and applies the analyzer,
// comparing diagnostics against the fixtures' want comments. The analyzer's
// PathFilter is bypassed: fixtures choose their own import paths (dir names
// under src/), and path-filter behaviour has its own unit tests.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	unfiltered := *a
	unfiltered.PathFilter = nil
	loader := analysis.NewLoader("fixture", dir+"/src")
	for _, pkgName := range pkgs {
		pkg, err := loader.Load("fixture/" + pkgName)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgName, err)
		}
		diags := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{&unfiltered})
		checkWants(t, loader.Fset, pkg, diags)
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// checkWants matches diagnostics against // want comments in the package.
func checkWants(t *testing.T, fset *token.FileSet, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				// Expectations either open the comment or follow an embedded
				// "// want" marker — the latter lets a line carry both a
				// //dmp: annotation (whose misuse is the diagnostic under
				// test) and its expectation, since a line comment cannot be
				// split in two.
				rest, found := strings.CutPrefix(text, "want ")
				if !found {
					if i := strings.Index(text, "// want "); i >= 0 {
						rest, found = text[i+len("// want "):], true
					}
				}
				if !found {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					pattern := m[1]
					if pattern == "" {
						pattern = m[2]
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// Findings loads one fixture package and returns the analyzer's raw
// diagnostics (PathFilter bypassed, suppressions applied) — for tests that
// assert on counts or positions directly.
func Findings(dir string, a *analysis.Analyzer, pkgName string) ([]analysis.Diagnostic, error) {
	unfiltered := *a
	unfiltered.PathFilter = nil
	loader := analysis.NewLoader("fixture", dir+"/src")
	pkg, err := loader.Load("fixture/" + pkgName)
	if err != nil {
		return nil, fmt.Errorf("loading fixture %s: %w", pkgName, err)
	}
	return analysis.RunAnalyzers(pkg, []*analysis.Analyzer{&unfiltered}), nil
}
