package slowdown

import "math"

// Sensitivity-curve archetypes. Real profiles (Zacarias CF'20) were measured
// with memory-bandwidth microbenchmark co-runners; we reproduce the three
// qualitative shapes reported there: bandwidth-bound apps degrade early and
// hard, balanced apps degrade smoothly past ~50 % fabric load, and
// compute-bound apps barely notice contention.
var (
	// CurveStream models a bandwidth-bound streaming app.
	CurveStream = Curve{{0, 0.30}, {0.25, 0.55}, {0.5, 1.0}, {0.75, 1.8}, {1.0, 2.8}, {1.5, 4.5}}
	// CurveBalanced models a mixed compute/memory app.
	CurveBalanced = Curve{{0, 0.12}, {0.25, 0.20}, {0.5, 0.40}, {0.75, 0.80}, {1.0, 1.4}, {1.5, 2.4}}
	// CurveCompute models a cache-friendly compute-bound app.
	CurveCompute = Curve{{0, 0.03}, {0.5, 0.08}, {1.0, 0.25}, {1.5, 0.5}}
)

// DefaultPool returns the pool of profiled applications used to match trace
// jobs by (size, runtime) similarity. The pool spans the job-size range of
// the paper's traces (1–128 nodes) and runtimes from minutes to days, with
// the three sensitivity archetypes interleaved so matched slowdown behaviour
// varies across the workload. Bandwidth figures are per node in GB/s,
// typical of the DDR4-era systems the paper targets.
func DefaultPool() []*Profile {
	type seed struct {
		name    string
		nodes   int
		runtime float64
		bw      float64
		read    float64
		sens    Curve
	}
	seeds := []seed{
		{"stream-tri", 1, 1800, 11.0, 0.67, CurveStream},
		{"fft-3d", 2, 3600, 9.5, 0.55, CurveStream},
		{"cfd-implicit", 4, 14400, 8.0, 0.6, CurveBalanced},
		{"md-lj", 4, 7200, 3.5, 0.7, CurveCompute},
		{"spmv-krylov", 8, 10800, 10.0, 0.8, CurveStream},
		{"qmc-walker", 8, 43200, 2.0, 0.75, CurveCompute},
		{"climate-dyn", 16, 86400, 6.5, 0.6, CurveBalanced},
		{"lattice-qcd", 16, 172800, 7.5, 0.5, CurveBalanced},
		{"adaptive-mesh", 32, 21600, 5.0, 0.65, CurveBalanced},
		{"nbody-tree", 32, 86400, 4.0, 0.7, CurveCompute},
		{"seismic-rtm", 64, 43200, 9.0, 0.55, CurveStream},
		{"dense-lu", 64, 14400, 6.0, 0.5, CurveBalanced},
		{"graph-bfs", 128, 7200, 10.5, 0.9, CurveStream},
		{"mc-transport", 128, 259200, 1.5, 0.8, CurveCompute},
		{"ocean-circ", 96, 129600, 5.5, 0.6, CurveBalanced},
		{"pde-mg", 24, 28800, 7.0, 0.6, CurveBalanced},
		{"bio-seq", 2, 86400, 1.0, 0.85, CurveCompute},
		{"vis-render", 1, 600, 4.5, 0.7, CurveCompute},
		{"kv-analytics", 48, 3600, 8.5, 0.75, CurveStream},
		{"sparse-chol", 12, 57600, 6.8, 0.55, CurveBalanced},
	}
	pool := make([]*Profile, len(seeds))
	for i, s := range seeds {
		pool[i] = &Profile{
			Name:         s.name,
			Nodes:        s.nodes,
			RuntimeSec:   s.runtime,
			BandwidthGBs: s.bw,
			ReadFrac:     s.read,
			Sens:         s.sens,
		}
	}
	return pool
}

// Matcher assigns trace jobs to the nearest profiled application by the
// Euclidean distance of log-scaled (size, runtime), as in the paper's Step 3.
// Log scaling is used because both size and runtime span several orders of
// magnitude; without it runtime would dominate the distance entirely.
type Matcher struct {
	pool []*Profile
}

// NewMatcher returns a matcher over the given pool (DefaultPool if nil).
func NewMatcher(pool []*Profile) *Matcher {
	if pool == nil {
		pool = DefaultPool()
	}
	return &Matcher{pool: pool}
}

// Pool returns the matcher's profile pool.
func (m *Matcher) Pool() []*Profile { return m.pool }

// Match returns the profile nearest to a job with the given node count and
// runtime. Ties break toward the earlier pool entry for determinism.
func (m *Matcher) Match(nodes int, runtimeSec float64) *Profile {
	best := m.pool[0]
	bestD := math.Inf(1)
	for _, p := range m.pool {
		d := dist2(nodes, runtimeSec, p)
		if d < bestD {
			bestD = d
			best = p
		}
	}
	return best
}

func dist2(nodes int, runtime float64, p *Profile) float64 {
	dn := math.Log2(float64(nodes)+1) - math.Log2(float64(p.Nodes)+1)
	dr := math.Log2(runtime+1) - math.Log2(p.RuntimeSec+1)
	return dn*dn + dr*dr
}
