// Package slowdown implements the remote-memory contention model used by the
// paper's simulator (after Zacarias, Nishtala, Carpenter, CF'20 and the
// multi-node extension in ICPADS'21).
//
// Each application is characterised by
//
//   - a sensitivity curve, mapping remote-memory bandwidth contention to a
//     performance penalty, and
//   - a contentiousness figure, the remote bandwidth the application drives
//     at full performance.
//
// The model considers only remote-memory bandwidth: remote accesses bypass
// the local cache hierarchy in the target system, so local cache contention
// is out of scope. The simulator recomputes contention whenever any job's
// memory placement changes:
//
//	pressure ρ   = Σ_jobs Σ_nodes contentiousness·remoteFraction / fabricBW
//	node slowdown = 1 + remoteFraction · penalty(ρ)
//	job slowdown  = max over the job's nodes (bulk-synchronous jobs run at
//	                the pace of their slowest node)
//
// A job with no remote memory has slowdown exactly 1. Application profiling
// is an input to the *simulation* only — the resource-management policy
// never sees profiles, matching the paper's production design.
package slowdown

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// CurvePoint is one knot of a sensitivity curve.
type CurvePoint struct {
	Pressure float64 // fabric bandwidth utilisation, 0..1+ (can exceed 1 when oversubscribed)
	Penalty  float64 // fractional runtime increase at full remote placement
}

// Curve is a piecewise-linear sensitivity curve, sorted by Pressure.
type Curve []CurvePoint

// ErrBadCurve reports an invalid sensitivity curve.
var ErrBadCurve = errors.New("slowdown: invalid sensitivity curve")

// Validate checks that the curve is non-empty, sorted, and non-negative.
func (c Curve) Validate() error {
	if len(c) == 0 {
		return fmt.Errorf("%w: empty", ErrBadCurve)
	}
	for i, p := range c {
		if p.Pressure < 0 || p.Penalty < 0 {
			return fmt.Errorf("%w: negative knot %d", ErrBadCurve, i)
		}
		if i > 0 && c[i-1].Pressure >= p.Pressure {
			return fmt.Errorf("%w: knots not strictly increasing at %d", ErrBadCurve, i)
		}
	}
	return nil
}

// Penalty evaluates the curve at pressure rho with linear interpolation,
// clamping to the first/last knot outside the curve's range.
func (c Curve) Penalty(rho float64) float64 {
	if len(c) == 0 {
		return 0
	}
	if rho <= c[0].Pressure {
		return c[0].Penalty
	}
	if rho >= c[len(c)-1].Pressure {
		return c[len(c)-1].Penalty
	}
	i := sort.Search(len(c), func(i int) bool { return c[i].Pressure >= rho })
	a, b := c[i-1], c[i]
	f := (rho - a.Pressure) / (b.Pressure - a.Pressure)
	return a.Penalty + f*(b.Penalty-a.Penalty)
}

// Profile characterises one profiled application from the pool used to match
// trace jobs (paper §3.2, Steps 2–3).
type Profile struct {
	Name         string
	Nodes        int     // size at which the app was profiled
	RuntimeSec   float64 // runtime at which the app was profiled
	BandwidthGBs float64 // contentiousness: remote BW demand per node at full performance
	ReadFrac     float64 // read share of memory traffic (informational)
	Sens         Curve   // sensitivity to fabric contention
}

// Model holds the fabric parameters. The interconnect is a torus sized per
// node, so aggregate remote bandwidth scales linearly with node count.
type Model struct {
	PerNodeBWGBs float64 // remote-memory bandwidth provisioned per node
	Nodes        int
}

// NewModel returns a contention model for a fabric of n nodes with the given
// per-node remote bandwidth (GB/s).
func NewModel(n int, perNodeBW float64) *Model {
	return &Model{PerNodeBWGBs: perNodeBW, Nodes: n}
}

// FabricBW returns the aggregate remote-memory bandwidth of the system.
func (m *Model) FabricBW() float64 { return m.PerNodeBWGBs * float64(m.Nodes) }

// Pressure converts aggregate remote traffic (GB/s) into fabric utilisation.
func (m *Model) Pressure(totalRemoteTraffic float64) float64 {
	bw := m.FabricBW()
	if bw <= 0 {
		return 0
	}
	return totalRemoteTraffic / bw
}

// PressureBW converts remote traffic (GB/s) into utilisation of an explicit
// bandwidth budget. It is Model.Pressure generalised to a caller-chosen
// scope: the partitioned contention model evaluates it once per pressure
// domain, with the domain's aggregate bandwidth as the budget. With the
// whole fabric's bandwidth it is bit-identical to Model.Pressure.
func PressureBW(traffic, bw float64) float64 {
	if bw <= 0 {
		return 0
	}
	return traffic / bw
}

// NodeTraffic returns the remote traffic one node of the app injects when a
// fraction remoteFrac of its working set is remote.
func NodeTraffic(p *Profile, remoteFrac float64) float64 {
	return p.BandwidthGBs * clamp01(remoteFrac)
}

// NodeSlowdown returns the slowdown factor (≥1) for one node of the app.
func NodeSlowdown(p *Profile, remoteFrac, rho float64) float64 {
	rf := clamp01(remoteFrac)
	if rf == 0 {
		return 1
	}
	return 1 + rf*p.Sens.Penalty(rho)
}

// JobSlowdown returns the slowdown of a multi-node job: the maximum of its
// per-node slowdowns, since bulk-synchronous applications advance at the
// pace of the slowest node.
func JobSlowdown(p *Profile, remoteFracs []float64, rho float64) float64 {
	s := 1.0
	for _, rf := range remoteFracs {
		if v := NodeSlowdown(p, rf, rho); v > s {
			s = v
		}
	}
	return s
}

// NodeSlowdownWeighted computes a node's slowdown from a distance-weighted
// remote fraction (Σ lease·hopWeight / allocation). Unlike NodeSlowdown the
// fraction is not clamped at 1: leases several hops away legitimately cost
// more than an all-remote single-hop placement.
func NodeSlowdownWeighted(p *Profile, weightedFrac, rho float64) float64 {
	if weightedFrac <= 0 || math.IsNaN(weightedFrac) {
		return 1
	}
	return 1 + weightedFrac*p.Sens.Penalty(rho)
}

// JobSlowdownWeighted is the multi-node maximum over distance-weighted
// per-node fractions.
func JobSlowdownWeighted(p *Profile, weightedFracs []float64, rho float64) float64 {
	s := 1.0
	for _, wf := range weightedFracs {
		if v := NodeSlowdownWeighted(p, wf, rho); v > s {
			s = v
		}
	}
	return s
}

// MaxWeightedFrac reduces a job's per-node weighted remote fractions to the
// single number its slowdown depends on: the largest contention-relevant
// fraction. NaN and non-positive entries contribute nothing (their node
// slowdown is exactly 1), so they reduce to zero.
//
// The simulator caches this per running job and re-derives it only when that
// job's allocation changes; JobSlowdownFromMax then recomputes the slowdown
// for a new pressure without revisiting the nodes.
func MaxWeightedFrac(weightedFracs []float64) float64 {
	m := 0.0
	for _, wf := range weightedFracs {
		if wf > m { // NaN and negatives fail the comparison
			m = wf
		}
	}
	return m
}

// JobSlowdownFromMax returns the job slowdown given only the maximum weighted
// remote fraction (as produced by MaxWeightedFrac). It is bit-identical to
// JobSlowdownWeighted over the full fraction vector: for a non-negative
// penalty, 1 + wf·penalty is monotone in wf under IEEE-754 round-to-nearest,
// so the per-node maximum is attained at the maximum fraction; the final
// max-with-1 guards the degenerate negative-penalty case the same way
// JobSlowdownWeighted's running maximum (seeded at 1) does. A property test
// asserts the bit equality over randomized curves and fraction vectors.
func JobSlowdownFromMax(p *Profile, maxFrac, rho float64) float64 {
	if maxFrac <= 0 || math.IsNaN(maxFrac) {
		return 1
	}
	if v := 1 + maxFrac*p.Sens.Penalty(rho); v > 1 {
		return v
	}
	return 1
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	if math.IsNaN(x) {
		return 0
	}
	return x
}
