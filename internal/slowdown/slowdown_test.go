package slowdown

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCurveValidate(t *testing.T) {
	if err := CurveStream.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Curve{}).Validate(); err == nil {
		t.Fatal("empty curve passed validation")
	}
	if err := (Curve{{0, 0.1}, {0, 0.2}}).Validate(); err == nil {
		t.Fatal("non-increasing knots passed validation")
	}
	if err := (Curve{{0, -0.1}}).Validate(); err == nil {
		t.Fatal("negative penalty passed validation")
	}
}

func TestCurvePenaltyInterpolation(t *testing.T) {
	c := Curve{{0, 0}, {1, 10}}
	cases := []struct{ rho, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {2, 10},
	}
	for _, tc := range cases {
		if got := c.Penalty(tc.rho); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Penalty(%g) = %g, want %g", tc.rho, got, tc.want)
		}
	}
	if got := (Curve{}).Penalty(0.5); got != 0 {
		t.Errorf("empty curve penalty = %g, want 0", got)
	}
}

func TestNodeSlowdownIdentities(t *testing.T) {
	p := &Profile{BandwidthGBs: 10, Sens: CurveStream}
	if got := NodeSlowdown(p, 0, 0.9); got != 1 {
		t.Fatalf("fully local slowdown = %g, want exactly 1", got)
	}
	// At remoteFrac 1, slowdown = 1 + penalty.
	want := 1 + CurveStream.Penalty(0.5)
	if got := NodeSlowdown(p, 1, 0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("full remote slowdown = %g, want %g", got, want)
	}
	// remoteFrac is clamped.
	if got := NodeSlowdown(p, 2.5, 0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("clamped slowdown = %g, want %g", got, want)
	}
}

func TestJobSlowdownIsMaxOverNodes(t *testing.T) {
	p := &Profile{BandwidthGBs: 10, Sens: Curve{{0, 1}, {1, 1}}}
	got := JobSlowdown(p, []float64{0, 0.2, 0.9, 0.5}, 0.5)
	want := 1 + 0.9*1.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("job slowdown = %g, want %g (slowest node)", got, want)
	}
	if got := JobSlowdown(p, nil, 0.5); got != 1 {
		t.Fatalf("no-node slowdown = %g, want 1", got)
	}
}

func TestModelPressure(t *testing.T) {
	m := NewModel(100, 10) // 1000 GB/s fabric
	if got := m.Pressure(500); got != 0.5 {
		t.Fatalf("pressure = %g, want 0.5", got)
	}
	if got := m.Pressure(2000); got != 2.0 {
		t.Fatalf("oversubscribed pressure = %g, want 2.0", got)
	}
	z := NewModel(0, 10)
	if got := z.Pressure(100); got != 0 {
		t.Fatalf("zero-fabric pressure = %g, want 0", got)
	}
}

func TestNodeTraffic(t *testing.T) {
	p := &Profile{BandwidthGBs: 8}
	if got := NodeTraffic(p, 0.25); got != 2 {
		t.Fatalf("traffic = %g, want 2", got)
	}
	if got := NodeTraffic(p, -1); got != 0 {
		t.Fatalf("negative frac traffic = %g, want 0", got)
	}
}

func TestDefaultPoolWellFormed(t *testing.T) {
	pool := DefaultPool()
	if len(pool) < 10 {
		t.Fatalf("pool too small: %d", len(pool))
	}
	seen := map[string]bool{}
	for _, p := range pool {
		if seen[p.Name] {
			t.Fatalf("duplicate profile name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Nodes <= 0 || p.RuntimeSec <= 0 || p.BandwidthGBs <= 0 {
			t.Fatalf("profile %q has non-positive parameters", p.Name)
		}
		if err := p.Sens.Validate(); err != nil {
			t.Fatalf("profile %q: %v", p.Name, err)
		}
	}
}

func TestMatcherExactAndNearest(t *testing.T) {
	m := NewMatcher(nil)
	for _, p := range m.Pool() {
		if got := m.Match(p.Nodes, p.RuntimeSec); got != p {
			t.Fatalf("Match(%d,%g) = %q, want itself %q", p.Nodes, p.RuntimeSec, got.Name, p.Name)
		}
	}
	// A 100-node day-long job should land on a large profile, not a
	// 1-node one.
	got := m.Match(100, 86400)
	if got.Nodes < 32 {
		t.Fatalf("Match(100, 1d) = %q (%d nodes), want a large profile", got.Name, got.Nodes)
	}
}

// Property: matching returns a pool member and is scale-monotone in the
// sense that the returned distance is minimal.
func TestQuickMatcherIsNearest(t *testing.T) {
	m := NewMatcher(nil)
	f := func(rawNodes uint8, rawRt uint32) bool {
		nodes := int(rawNodes)%128 + 1
		rt := float64(rawRt%1000000) + 1
		got := m.Match(nodes, rt)
		gd := dist2(nodes, rt, got)
		for _, p := range m.Pool() {
			if dist2(nodes, rt, p) < gd-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: penalty curves are monotone in pressure for the built-in
// archetypes, so higher contention never speeds a job up.
func TestQuickBuiltinCurvesMonotone(t *testing.T) {
	curves := []Curve{CurveStream, CurveBalanced, CurveCompute}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := curves[rng.Intn(len(curves))]
		a := rng.Float64() * 2
		b := rng.Float64() * 2
		if a > b {
			a, b = b, a
		}
		return c.Penalty(a) <= c.Penalty(b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: JobSlowdownFromMax(MaxWeightedFrac(fracs)) is bit-identical to
// JobSlowdownWeighted(fracs) — not just approximately equal. The simulator's
// incremental refresh caches only the max weighted fraction per job, so the
// golden-digest determinism guarantees rest on exact float64 equality here,
// including NaN, negative, zero and >1 entries.
func TestQuickJobSlowdownFromMaxBitIdentical(t *testing.T) {
	curves := []Curve{CurveStream, CurveBalanced, CurveCompute, {{0, 0}}, {{0, 0}, {2, 3.7}}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &Profile{BandwidthGBs: 1 + rng.Float64()*20, Sens: curves[rng.Intn(len(curves))]}
		n := rng.Intn(6)
		fracs := make([]float64, n)
		for i := range fracs {
			switch rng.Intn(5) {
			case 0:
				fracs[i] = 0
			case 1:
				fracs[i] = -rng.Float64()
			case 2:
				fracs[i] = math.NaN()
			case 3:
				fracs[i] = 1 + rng.Float64()*3 // hop-weighted fractions exceed 1
			default:
				fracs[i] = rng.Float64()
			}
		}
		rho := rng.Float64() * 2
		want := JobSlowdownWeighted(p, fracs, rho)
		got := JobSlowdownFromMax(p, MaxWeightedFrac(fracs), rho)
		return math.Float64bits(got) == math.Float64bits(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxWeightedFracEdgeCases(t *testing.T) {
	if got := MaxWeightedFrac(nil); got != 0 {
		t.Fatalf("MaxWeightedFrac(nil) = %g, want 0", got)
	}
	if got := MaxWeightedFrac([]float64{math.NaN(), -3, 0}); got != 0 {
		t.Fatalf("MaxWeightedFrac(NaN,-3,0) = %g, want 0", got)
	}
	if got := MaxWeightedFrac([]float64{0.25, 1.5, 0.9}); got != 1.5 {
		t.Fatalf("MaxWeightedFrac = %g, want 1.5", got)
	}
}

// Property: slowdown is monotone in remote fraction and in pressure.
func TestQuickSlowdownMonotone(t *testing.T) {
	p := &Profile{BandwidthGBs: 10, Sens: CurveBalanced}
	f := func(r1, r2, rho1, rho2 float64) bool {
		r1, r2 = math.Abs(math.Mod(r1, 1)), math.Abs(math.Mod(r2, 1))
		rho1, rho2 = math.Abs(math.Mod(rho1, 2)), math.Abs(math.Mod(rho2, 2))
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		if rho1 > rho2 {
			rho1, rho2 = rho2, rho1
		}
		if NodeSlowdown(p, r1, rho1) > NodeSlowdown(p, r2, rho1)+1e-12 {
			return false
		}
		return NodeSlowdown(p, r2, rho1) <= NodeSlowdown(p, r2, rho2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
