package workload

import (
	"errors"
	"math/rand"

	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/slowdown"
)

// UsageSource supplies per-node memory-usage traces for generated jobs.
// The Google-trace package implements it with Borg-like shapes; the default
// PhasedUsage source below is self-contained.
type UsageSource interface {
	// TraceFor returns a usage trace spanning runtime seconds whose peak
	// equals peakMB.
	TraceFor(rng *rand.Rand, peakMB int64, runtime float64) *memtrace.Trace
}

// BuildParams controls Spec → Job conversion (paper Fig. 3, Steps 2–6).
type BuildParams struct {
	// LargeFrac is the scenario's fraction of large-memory jobs
	// (the paper's "Jobs Large X%" axis).
	LargeFrac float64
	// Overestimation inflates the request above the true peak
	// (the paper sweeps +0 % … +100 %).
	Overestimation float64
	// NormalNodeMB is the normal node capacity that separates normal-
	// from large-memory jobs.
	NormalNodeMB int64
	// ChainFrac makes a fraction of jobs depend on an earlier job
	// (workflow chains, Slurm --dependency=afterok). Zero, the paper's
	// setting, generates independent jobs.
	ChainFrac float64
	Source    UsageSource
	Matcher   *slowdown.Matcher
	Seed      int64
}

// ErrNoSource reports a missing usage source.
var ErrNoSource = errors.New("workload: nil usage source")

// BuildJobs attaches memory demands, usage traces and application profiles
// to generated specs, yielding simulator-ready jobs. Large-memory jobs are
// drawn with probability LargeFrac from the paper's large-memory
// distribution (Table 3), others from the normal one.
func BuildJobs(specs []Spec, p BuildParams) ([]*job.Job, error) {
	if p.Source == nil {
		return nil, ErrNoSource
	}
	if p.NormalNodeMB <= 0 {
		p.NormalNodeMB = 64 * 1024
	}
	if p.Matcher == nil {
		p.Matcher = slowdown.NewMatcher(nil)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	normal := NormalMemorySampler()
	large := LargeMemorySampler()

	jobs := make([]*job.Job, 0, len(specs))
	for i, sp := range specs {
		var peak int64
		if rng.Float64() < p.LargeFrac {
			peak = int64(large.Sample(rng))
		} else {
			peak = int64(normal.Sample(rng))
			if peak > p.NormalNodeMB {
				peak = p.NormalNodeMB
			}
		}
		usage := p.Source.TraceFor(rng, peak, sp.Runtime)
		dependsOn := 0
		if p.ChainFrac > 0 && i > 0 && rng.Float64() < p.ChainFrac {
			// Chain onto one of the few preceding submissions, as a
			// user resubmitting the next stage of a workflow would.
			back := 1 + rng.Intn(minInt(i, 5))
			dependsOn = i + 1 - back
		}
		j := &job.Job{
			ID:          i + 1,
			SubmitTime:  sp.Submit,
			Nodes:       sp.Nodes,
			RequestMB:   Overestimate(peak, p.Overestimation),
			LimitSec:    sp.Limit,
			BaseRuntime: sp.Runtime,
			DependsOn:   dependsOn,
			Usage:       usage,
			Profile:     p.Matcher.Match(sp.Nodes, sp.Runtime),
		}
		if err := j.Validate(); err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// PhasedUsage is the built-in usage source: an HPC-like phase structure
// with a ramp-up, a few plateaus of differing heights (one of which touches
// the peak), and a tail. Mean usage lands well below the peak, matching the
// paper's observation that average use is much lower than maximum use.
type PhasedUsage struct {
	// MeanFrac is the approximate ratio of plateau height to peak for
	// non-peak phases (default 0.4).
	MeanFrac float64
	// Phases is the number of plateaus (default 4).
	Phases int
}

// TraceFor implements UsageSource.
func (s PhasedUsage) TraceFor(rng *rand.Rand, peakMB int64, runtime float64) *memtrace.Trace {
	mean := s.MeanFrac
	if mean <= 0 || mean >= 1 {
		mean = 0.4
	}
	phases := s.Phases
	if phases < 2 {
		phases = 4
	}
	peakPhase := rng.Intn(phases)
	pts := make([]memtrace.Point, 0, phases)
	for i := 0; i < phases; i++ {
		at := runtime * float64(i) / float64(phases)
		var mb int64
		if i == peakPhase {
			mb = peakMB
		} else {
			f := mean * (0.5 + rng.Float64()) // 0.5–1.5× the mean fraction
			if f > 0.95 {
				f = 0.95
			}
			mb = int64(f * float64(peakMB))
			if mb < 1 {
				mb = 1
			}
		}
		pts = append(pts, memtrace.Point{T: at, MB: mb})
	}
	return memtrace.MustNew(pts)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
