package workload

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCirneParamsValidate(t *testing.T) {
	good := NewCirneParams(1024, 0.8, 7)
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Load = 0
	if err := bad.validate(); !errors.Is(err, ErrParams) {
		t.Fatalf("zero load: err = %v", err)
	}
	bad = good
	bad.MaxNodes = 0
	if err := bad.validate(); !errors.Is(err, ErrParams) {
		t.Fatalf("zero max nodes: err = %v", err)
	}
	bad = good
	bad.LimitAccuracyMin = 0
	if err := bad.validate(); !errors.Is(err, ErrParams) {
		t.Fatalf("zero limit accuracy: err = %v", err)
	}
}

func TestGenerateMeetsLoadTarget(t *testing.T) {
	p := NewCirneParams(256, 0.8, 2)
	specs, err := Generate(p, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("no jobs generated")
	}
	var nodeSec float64
	for _, s := range specs {
		nodeSec += float64(s.Nodes) * s.Runtime
	}
	target := p.Load * float64(p.SystemNodes) * p.Days * 86400
	if nodeSec < target {
		t.Fatalf("node-seconds %g below target %g", nodeSec, target)
	}
	// One job of overshoot at most.
	if nodeSec > target+float64(p.MaxNodes)*p.MaxRuntime {
		t.Fatalf("node-seconds %g overshoots target %g by more than one job", nodeSec, target)
	}
}

func TestGenerateSpecInvariants(t *testing.T) {
	p := NewCirneParams(512, 0.7, 3)
	specs, err := Generate(p, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	span := p.Days * 86400
	serial := 0
	for i, s := range specs {
		if s.Nodes < 1 || s.Nodes > p.MaxNodes {
			t.Fatalf("spec %d: nodes %d out of range", i, s.Nodes)
		}
		if s.Runtime < p.MinRuntime || s.Runtime > p.MaxRuntime {
			t.Fatalf("spec %d: runtime %g out of range", i, s.Runtime)
		}
		if s.Limit < s.Runtime {
			t.Fatalf("spec %d: limit %g below runtime %g", i, s.Limit, s.Runtime)
		}
		if s.Limit > s.Runtime/p.LimitAccuracyMin*1.0001 {
			t.Fatalf("spec %d: limit %g exceeds max padding", i, s.Limit)
		}
		if s.Submit < 0 || s.Submit >= span {
			t.Fatalf("spec %d: submit %g outside trace span", i, s.Submit)
		}
		if i > 0 && specs[i-1].Submit > s.Submit {
			t.Fatal("specs not sorted by submission")
		}
		if s.Nodes == 1 {
			serial++
		}
	}
	// Serial fraction should be at least the configured floor (size
	// sampling can add more 1-node jobs).
	if frac := float64(serial) / float64(len(specs)); frac < p.SerialFrac*0.7 {
		t.Fatalf("serial fraction %g far below configured %g", frac, p.SerialFrac)
	}
}

func TestGenerateDayCycle(t *testing.T) {
	p := NewCirneParams(2048, 0.9, 10)
	specs, err := Generate(p, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	day, night := 0, 0
	for _, s := range specs {
		h := math.Mod(s.Submit/3600, 24)
		if h >= 9 && h < 19 {
			day++
		} else if h < 5 || h >= 23 {
			night++
		}
	}
	// Peak hours span 10h, sampled night hours 6h; normalise per hour.
	if float64(day)/10 <= float64(night)/6 {
		t.Fatalf("no diurnal cycle: day/h=%g night/h=%g", float64(day)/10, float64(night)/6)
	}
}

func TestQuantileSampler(t *testing.T) {
	s, err := NewQuantileSampler(1, 10, 100, 1000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 10}, {0.5, 100}, {0.75, 1000}, {1, 10000},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9*tc.want {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	// Log-linear interpolation between knots.
	if got := s.Quantile(0.375); math.Abs(got-math.Sqrt(10*100)) > 1e-6 {
		t.Errorf("Quantile(0.375) = %g, want geometric mean %g", got, math.Sqrt(1000.0))
	}
	if _, err := NewQuantileSampler(5, 4, 3, 2, 1); !errors.Is(err, ErrBadSummary) {
		t.Fatalf("decreasing summary: err = %v", err)
	}
}

func TestMemorySamplersMatchTable3(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 20000
	normal := NormalMemorySampler()
	large := LargeMemorySampler()
	var nv, lv []float64
	for i := 0; i < n; i++ {
		nv = append(nv, normal.Sample(rng))
		lv = append(lv, large.Sample(rng))
	}
	med := func(v []float64) float64 {
		s := append([]float64(nil), v...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	if m := med(nv); m < 6000 || m > 11000 {
		t.Fatalf("normal median = %g, want ≈8089 (Table 3)", m)
	}
	if m := med(lv); m < 80000 || m > 95000 {
		t.Fatalf("large median = %g, want ≈86961 (Table 3)", m)
	}
	for _, v := range lv {
		if v < 65538 || v > 130046 {
			t.Fatalf("large sample %g outside Table 3 bounds", v)
		}
	}
}

func TestArcherDistributionsValid(t *testing.T) {
	for _, d := range []MemoryDist{
		ArcherAll, ArcherNormalSize, ArcherLargeSize,
		GrizzlyAll, GrizzlyNormalSize, GrizzlyLargeSize,
	} {
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMemoryDistSampleHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var vals []int64
	for i := 0; i < 50000; i++ {
		vals = append(vals, ArcherAll.SampleMB(rng))
	}
	got := ArcherAll.Histogram(vals)
	for i, b := range ArcherAll {
		if math.Abs(got[i]-b.Share) > 0.02 {
			t.Fatalf("bucket %d share = %g, want %g ± 0.02", i, got[i], b.Share)
		}
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	got := ArcherAll.Histogram([]int64{999999999})
	if got[len(got)-1] != 1 {
		t.Fatalf("outlier not clamped into last bucket: %v", got)
	}
	empty := ArcherAll.Histogram(nil)
	for _, v := range empty {
		if v != 0 {
			t.Fatal("empty histogram not all-zero")
		}
	}
}

func TestOverestimate(t *testing.T) {
	if got := Overestimate(1000, 0.6); got != 1600 {
		t.Fatalf("got %d, want 1600", got)
	}
	if got := Overestimate(1000, 0); got != 1000 {
		t.Fatalf("got %d, want 1000", got)
	}
	if got := Overestimate(1000, -1); got != 1000 {
		t.Fatalf("negative factor: got %d, want clamp to 1000", got)
	}
}

func TestBuildJobs(t *testing.T) {
	p := NewCirneParams(64, 0.7, 1)
	specs, err := Generate(p, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := BuildJobs(specs, BuildParams{
		LargeFrac:      0.5,
		Overestimation: 0.6,
		NormalNodeMB:   64 * 1024,
		Source:         PhasedUsage{},
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(specs) {
		t.Fatalf("jobs = %d, specs = %d", len(jobs), len(specs))
	}
	largeCount := 0
	for _, j := range jobs {
		peak := j.PeakUsageMB()
		// Request = peak × 1.6.
		want := Overestimate(peak, 0.6)
		if j.RequestMB != want {
			t.Fatalf("job %d request = %d, want %d", j.ID, j.RequestMB, want)
		}
		if j.Profile == nil {
			t.Fatalf("job %d has no matched profile", j.ID)
		}
		if peak > 64*1024 {
			largeCount++
		}
	}
	frac := float64(largeCount) / float64(len(jobs))
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("large-memory fraction = %g, want ≈0.5", frac)
	}
}

func TestBuildJobsRequiresSource(t *testing.T) {
	if _, err := BuildJobs(nil, BuildParams{}); !errors.Is(err, ErrNoSource) {
		t.Fatalf("err = %v, want ErrNoSource", err)
	}
}

func TestPhasedUsageShape(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		tr := PhasedUsage{}.TraceFor(rng, 10000, 3600)
		if tr.Peak() != 10000 {
			t.Fatalf("peak = %d, want exactly 10000", tr.Peak())
		}
		mean, err := tr.MeanOver(3600)
		if err != nil {
			t.Fatal(err)
		}
		if mean >= 10000 {
			t.Fatalf("mean %g not below peak", mean)
		}
	}
}

// Property: build preserves spec ordering and produces valid jobs for any
// mix/overestimation setting.
func TestQuickBuildValid(t *testing.T) {
	f := func(seed int64, largeFrac, ov float64) bool {
		largeFrac = math.Abs(math.Mod(largeFrac, 1))
		ov = math.Abs(math.Mod(ov, 1))
		p := NewCirneParams(32, 0.5, 0.5)
		specs, err := Generate(p, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		jobs, err := BuildJobs(specs, BuildParams{
			LargeFrac: largeFrac, Overestimation: ov,
			Source: PhasedUsage{}, Seed: seed,
		})
		if err != nil {
			return false
		}
		for i, j := range jobs {
			if j.Validate() != nil {
				return false
			}
			if j.RequestMB < j.PeakUsageMB() {
				return false // overestimation never under-requests
			}
			if i > 0 && jobs[i-1].SubmitTime > j.SubmitTime {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: the quantile function is monotone.
func TestQuickQuantileMonotone(t *testing.T) {
	s := LargeMemorySampler()
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 1))
		b = math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		return s.Quantile(a) <= s.Quantile(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCharacterize(t *testing.T) {
	p := NewCirneParams(64, 0.7, 1)
	specs, err := Generate(p, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := BuildJobs(specs, BuildParams{
		LargeFrac: 0.5, Overestimation: 0.6,
		NormalNodeMB: 64 * 1024, Source: PhasedUsage{}, Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Characterize(jobs, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	if c.Jobs != len(jobs) {
		t.Fatalf("jobs = %d", c.Jobs)
	}
	// Requests were inflated by ~60% (integer truncation shaves a bit
	// off jobs with tiny peaks).
	if math.Abs(c.MeanOverestimation-0.6) > 0.05 {
		t.Fatalf("mean overestimation = %g, want ≈0.6", c.MeanOverestimation)
	}
	// Large-memory mix near the configured 50%.
	if c.LargeMemFrac < 0.3 || c.LargeMemFrac > 0.7 {
		t.Fatalf("large fraction = %g", c.LargeMemFrac)
	}
	// The reclaimable gap: average usage well below peak.
	if c.AvgToPeak <= 0 || c.AvgToPeak >= 1 {
		t.Fatalf("avg/peak = %g, want in (0,1)", c.AvgToPeak)
	}
	// Offered load near the generator's target when measured against the
	// generating system size (generous tolerance: span ends at the last
	// submission).
	if l := c.Load(64); l < 0.3 || l > 3 {
		t.Fatalf("load = %g, implausible", l)
	}
	if c.DiurnalIndex < 1 {
		t.Fatalf("diurnal index = %g, want ≥ 1", c.DiurnalIndex)
	}
	if !strings.Contains(c.String(), "large-memory jobs") {
		t.Fatal("rendering broken")
	}
	if _, err := Characterize(nil, 64*1024); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestBuildJobsChains(t *testing.T) {
	p := NewCirneParams(64, 0.7, 1)
	specs, err := Generate(p, rand.New(rand.NewSource(41)))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := BuildJobs(specs, BuildParams{
		LargeFrac: 0.2, ChainFrac: 0.4,
		Source: PhasedUsage{}, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	chained := 0
	for i, j := range jobs {
		if j.DependsOn != 0 {
			chained++
			if j.DependsOn >= j.ID {
				t.Fatalf("job %d depends forward on %d", j.ID, j.DependsOn)
			}
			if j.ID-j.DependsOn > 5 {
				t.Fatalf("job %d depends too far back (%d)", j.ID, j.DependsOn)
			}
		}
		_ = i
	}
	if len(jobs) > 10 && chained == 0 {
		t.Fatal("ChainFrac produced no chains")
	}
	// Zero ChainFrac (the paper's setting) produces none.
	plain, err := BuildJobs(specs, BuildParams{Source: PhasedUsage{}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range plain {
		if j.DependsOn != 0 {
			t.Fatal("dependency generated with ChainFrac=0")
		}
	}
}
