// Package workload generates synthetic HPC job traces following the CIRNE
// comprehensive supercomputer workload model (Cirne & Berman, WWC-4 2001)
// as extended by Zacarias et al., plus the memory-demand distributions the
// paper takes from the ARCHER survey (Table 2) and its own trace
// characterisation (Table 3).
package workload

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Spec is the scheduler-visible part of one generated job, before memory
// and usage-trace assignment.
type Spec struct {
	Submit  float64 // seconds from trace start
	Nodes   int
	Runtime float64 // actual runtime, seconds
	Limit   float64 // requested wallclock, seconds (>= Runtime)
}

// CirneParams parameterises the generator. NewCirneParams returns the
// defaults used throughout the reproduction, calibrated to the shapes
// reported by Cirne & Berman: ~1/4 serial jobs, power-of-two sizes
// dominate, log-normal runtimes of a few hours, day-cycled arrivals, and
// user wallclock requests that overestimate runtime by up to 5×.
type CirneParams struct {
	MaxNodes int     // largest job size to generate
	Days     float64 // trace span in days

	// Load is the target CPU utilisation: generated node-seconds over
	// system node-seconds, given the system size in SystemNodes.
	Load        float64
	SystemNodes int

	SerialFrac   float64 // probability of a 1-node job
	Pow2Frac     float64 // probability a parallel size snaps to a power of two
	SizeLog2Mean float64 // mean of the normal distribution over log2(size)
	SizeLog2Sig  float64

	RuntimeLogMean float64 // mean of ln(runtime seconds)
	RuntimeLogSig  float64
	MinRuntime     float64
	MaxRuntime     float64

	// The requested limit is Runtime/u with u uniform in
	// [LimitAccuracyMin, 1]: users pad their wallclock requests.
	LimitAccuracyMin float64

	// DayAmplitude modulates the arrival rate over the day:
	// rate(t) ∝ 1 + DayAmplitude·cos(2π(h-14)/24), peaking mid-afternoon.
	DayAmplitude float64
}

// NewCirneParams returns the default parameterisation for a system of the
// given size and target load.
func NewCirneParams(systemNodes int, load, days float64) CirneParams {
	return CirneParams{
		MaxNodes:         128,
		Days:             days,
		Load:             load,
		SystemNodes:      systemNodes,
		SerialFrac:       0.24,
		Pow2Frac:         0.75,
		SizeLog2Mean:     2.5,
		SizeLog2Sig:      1.8,
		RuntimeLogMean:   math.Log(4 * 3600),
		RuntimeLogSig:    1.6,
		MinRuntime:       60,
		MaxRuntime:       5 * 86400,
		LimitAccuracyMin: 0.2,
		DayAmplitude:     0.6,
	}
}

// ErrParams reports an invalid generator configuration.
var ErrParams = errors.New("workload: invalid parameters")

func (p *CirneParams) validate() error {
	switch {
	case p.MaxNodes < 1, p.SystemNodes < 1:
		return ErrParams
	case p.Days <= 0, p.Load <= 0 || p.Load > 1:
		return ErrParams
	case p.SerialFrac < 0 || p.SerialFrac > 1:
		return ErrParams
	case p.Pow2Frac < 0 || p.Pow2Frac > 1:
		return ErrParams
	case p.MinRuntime <= 0 || p.MaxRuntime < p.MinRuntime:
		return ErrParams
	case p.LimitAccuracyMin <= 0 || p.LimitAccuracyMin > 1:
		return ErrParams
	case p.DayAmplitude < 0 || p.DayAmplitude >= 1:
		return ErrParams
	}
	return nil
}

// Generate produces a job trace meeting the target load. Jobs are emitted
// in submission order.
func Generate(p CirneParams, rng *rand.Rand) ([]Spec, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	span := p.Days * 86400
	targetNodeSec := p.Load * float64(p.SystemNodes) * span

	var specs []Spec
	var accum float64
	for accum < targetNodeSec {
		nodes := p.sampleSize(rng)
		runtime := p.sampleRuntime(rng)
		limit := runtime / (p.LimitAccuracyMin + rng.Float64()*(1-p.LimitAccuracyMin))
		specs = append(specs, Spec{Nodes: nodes, Runtime: runtime, Limit: limit})
		accum += float64(nodes) * runtime
	}

	// Assign day-cycled arrival times by inverse-CDF sampling of the
	// diurnal rate, then sort into submission order.
	for i := range specs {
		specs[i].Submit = p.sampleArrival(rng, span)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Submit < specs[j].Submit })
	return specs, nil
}

func (p *CirneParams) sampleSize(rng *rand.Rand) int {
	if rng.Float64() < p.SerialFrac {
		return 1
	}
	maxLog := math.Log2(float64(p.MaxNodes))
	x := rng.NormFloat64()*p.SizeLog2Sig + p.SizeLog2Mean
	for x < 0 || x > maxLog {
		x = rng.NormFloat64()*p.SizeLog2Sig + p.SizeLog2Mean
	}
	var n int
	if rng.Float64() < p.Pow2Frac {
		n = 1 << int(x+0.5)
	} else {
		n = int(math.Exp2(x) + 0.5)
	}
	if n < 1 {
		n = 1
	}
	if n > p.MaxNodes {
		n = p.MaxNodes
	}
	return n
}

func (p *CirneParams) sampleRuntime(rng *rand.Rand) float64 {
	r := math.Exp(rng.NormFloat64()*p.RuntimeLogSig + p.RuntimeLogMean)
	if r < p.MinRuntime {
		r = p.MinRuntime
	}
	if r > p.MaxRuntime {
		r = p.MaxRuntime
	}
	return r
}

// sampleArrival draws one arrival in [0, span) from the diurnal-cycle
// density via rejection sampling against the flat envelope.
func (p *CirneParams) sampleArrival(rng *rand.Rand, span float64) float64 {
	peak := 1 + p.DayAmplitude
	for {
		t := rng.Float64() * span
		hour := math.Mod(t/3600, 24)
		w := 1 + p.DayAmplitude*math.Cos(2*math.Pi*(hour-14)/24)
		if rng.Float64()*peak <= w {
			return t
		}
	}
}
