package workload

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dismem/internal/job"
)

// Characterization summarises a job trace the way the paper's §3.3 does:
// load, size/runtime distributions, memory classes and the gap between
// average and peak memory use.
type Characterization struct {
	Jobs      int
	SpanSec   float64 // last submission time
	NodeHours float64

	SerialFrac   float64 // share of 1-node jobs
	Pow2Frac     float64 // share of power-of-two sizes
	MaxNodes     int
	MedianNodes  int
	MedianRunSec float64

	LargeMemFrac float64 // peak above the normal-node boundary
	MeanPeakMB   float64
	MeanAvgMB    float64 // mean of per-job average usage
	AvgToPeak    float64 // MeanAvgMB / MeanPeakMB: the reclaimable gap

	MeanOverestimation float64 // mean request/peak − 1

	DiurnalIndex float64 // peak-hour vs trough-hour arrival ratio (≥1)
}

// Characterize computes the summary. normalMB separates normal- from
// large-memory jobs (the paper's 64 GB boundary).
func Characterize(jobs []*job.Job, normalMB int64) (*Characterization, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	c := &Characterization{Jobs: len(jobs)}
	var nodes []int
	var runtimes []float64
	var peakSum, avgSum, ovSum float64
	hourly := make([]float64, 24)
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		if j.SubmitTime > c.SpanSec {
			c.SpanSec = j.SubmitTime
		}
		c.NodeHours += j.NodeHours()
		nodes = append(nodes, j.Nodes)
		runtimes = append(runtimes, j.BaseRuntime)
		if j.Nodes == 1 {
			c.SerialFrac++
		}
		if j.Nodes&(j.Nodes-1) == 0 {
			c.Pow2Frac++
		}
		if j.Nodes > c.MaxNodes {
			c.MaxNodes = j.Nodes
		}
		peak := float64(j.PeakUsageMB())
		peakSum += peak
		mean, err := j.Usage.MeanOver(j.BaseRuntime)
		if err != nil {
			return nil, err
		}
		avgSum += mean
		if j.PeakUsageMB() > normalMB {
			c.LargeMemFrac++
		}
		if peak > 0 {
			ovSum += float64(j.RequestMB)/peak - 1
		}
		hourly[int(math.Mod(j.SubmitTime/3600, 24))]++
	}
	n := float64(len(jobs))
	c.SerialFrac /= n
	c.Pow2Frac /= n
	c.LargeMemFrac /= n
	c.MeanPeakMB = peakSum / n
	c.MeanAvgMB = avgSum / n
	if c.MeanPeakMB > 0 {
		c.AvgToPeak = c.MeanAvgMB / c.MeanPeakMB
	}
	c.MeanOverestimation = ovSum / n

	sort.Ints(nodes)
	sort.Float64s(runtimes)
	c.MedianNodes = nodes[len(nodes)/2]
	c.MedianRunSec = runtimes[len(runtimes)/2]

	peakHour, troughHour := hourly[0], hourly[0]
	for _, h := range hourly {
		if h > peakHour {
			peakHour = h
		}
		if h < troughHour {
			troughHour = h
		}
	}
	if troughHour > 0 {
		c.DiurnalIndex = peakHour / troughHour
	} else {
		c.DiurnalIndex = math.Inf(1)
	}
	return c, nil
}

// Load returns the trace's offered CPU load against a system of the given
// size over its span.
func (c *Characterization) Load(systemNodes int) float64 {
	if c.SpanSec <= 0 || systemNodes <= 0 {
		return 0
	}
	return c.NodeHours * 3600 / (float64(systemNodes) * c.SpanSec)
}

func (c *Characterization) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "jobs:              %d over %.1f days (%.0f node-hours)\n", c.Jobs, c.SpanSec/86400, c.NodeHours)
	fmt.Fprintf(&b, "sizes:             median %d, max %d, %.0f%% serial, %.0f%% power-of-two\n",
		c.MedianNodes, c.MaxNodes, c.SerialFrac*100, c.Pow2Frac*100)
	fmt.Fprintf(&b, "median runtime:    %.0f s\n", c.MedianRunSec)
	fmt.Fprintf(&b, "large-memory jobs: %.1f%%\n", c.LargeMemFrac*100)
	fmt.Fprintf(&b, "memory use:        mean peak %.0f MB, mean avg %.0f MB (avg/peak %.2f)\n",
		c.MeanPeakMB, c.MeanAvgMB, c.AvgToPeak)
	fmt.Fprintf(&b, "overestimation:    +%.0f%% mean request over peak\n", c.MeanOverestimation*100)
	fmt.Fprintf(&b, "diurnal index:     %.2f (peak-hour / trough-hour arrivals)\n", c.DiurnalIndex)
	return b.String()
}
