package workload

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLublinParamsValidate(t *testing.T) {
	good := NewLublinParams(512, 0.8, 2)
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*LublinParams){
		func(p *LublinParams) { p.Load = 0 },
		func(p *LublinParams) { p.MaxNodes = 0 },
		func(p *LublinParams) { p.UMed = p.ULow - 1 },
		func(p *LublinParams) { p.A1 = 0 },
		func(p *LublinParams) { p.ArrivalShape = 0 },
		func(p *LublinParams) { p.LimitAccuracyMin = 0 },
		func(p *LublinParams) { p.UProb = 2 },
	}
	for i, mutate := range mutations {
		bad := good
		mutate(&bad)
		if err := bad.validate(); !errors.Is(err, ErrParams) {
			t.Errorf("mutation %d: err = %v, want ErrParams", i, err)
		}
	}
}

func TestGenerateLublinMeetsLoad(t *testing.T) {
	p := NewLublinParams(256, 0.75, 2)
	specs, err := GenerateLublin(p, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("no jobs")
	}
	var nodeSec float64
	for _, s := range specs {
		nodeSec += float64(s.Nodes) * s.Runtime
	}
	target := p.Load * float64(p.SystemNodes) * p.Days * 86400
	if nodeSec < target {
		t.Fatalf("node-seconds %g below target %g", nodeSec, target)
	}
}

func TestGenerateLublinInvariants(t *testing.T) {
	p := NewLublinParams(128, 0.7, 1)
	specs, err := GenerateLublin(p, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	span := p.Days * 86400
	for i, s := range specs {
		if s.Nodes < 1 || s.Nodes > p.MaxNodes {
			t.Fatalf("spec %d: nodes %d", i, s.Nodes)
		}
		if s.Runtime < p.MinRuntime || s.Runtime > p.MaxRuntime {
			t.Fatalf("spec %d: runtime %g", i, s.Runtime)
		}
		if s.Limit < s.Runtime {
			t.Fatalf("spec %d: limit below runtime", i)
		}
		if s.Submit < 0 || s.Submit > span {
			t.Fatalf("spec %d: submit %g outside span", i, s.Submit)
		}
		if i > 0 && specs[i-1].Submit > s.Submit {
			t.Fatal("arrivals not sorted")
		}
	}
}

func TestLublinSizeDistributionShape(t *testing.T) {
	p := NewLublinParams(128, 0.7, 1)
	rng := rand.New(rand.NewSource(3))
	n := 20000
	serial, pow2 := 0, 0
	for i := 0; i < n; i++ {
		s := p.sampleSize(rng)
		if s == 1 {
			serial++
		}
		if s&(s-1) == 0 {
			pow2++
		}
	}
	if frac := float64(serial) / float64(n); frac < 0.18 || frac > 0.42 {
		t.Fatalf("serial fraction = %g, want near 0.244 (plus snapping)", frac)
	}
	// Power-of-two sizes dominate (snapping plus serial jobs).
	if frac := float64(pow2) / float64(n); frac < 0.6 {
		t.Fatalf("power-of-two fraction = %g, want > 0.6", frac)
	}
}

func TestLublinRuntimeSizeCorrelation(t *testing.T) {
	// Bigger jobs draw the long runtime mode more often, so their mean
	// runtime must be higher.
	p := NewLublinParams(128, 0.7, 1)
	rng := rand.New(rand.NewSource(4))
	meanFor := func(nodes int) float64 {
		var sum float64
		for i := 0; i < 5000; i++ {
			sum += p.sampleRuntime(rng, nodes)
		}
		return sum / 5000
	}
	small := meanFor(1)
	big := meanFor(128)
	if big <= small {
		t.Fatalf("mean runtime: 128-node %g not above 1-node %g", big, small)
	}
}

func TestRgammaMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, shape := range []float64{0.5, 1, 2.5, 9} {
		n := 60000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := rgamma(rng, shape)
			if v <= 0 {
				t.Fatalf("rgamma(%g) produced %g", shape, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		// Gamma(k,1): mean k, variance k.
		if math.Abs(mean-shape) > 0.06*shape+0.03 {
			t.Fatalf("rgamma(%g): mean %g", shape, mean)
		}
		if math.Abs(variance-shape) > 0.12*shape+0.06 {
			t.Fatalf("rgamma(%g): variance %g", shape, variance)
		}
	}
}

func TestLublinBuildsJobs(t *testing.T) {
	p := NewLublinParams(32, 0.6, 0.5)
	specs, err := GenerateLublin(p, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := BuildJobs(specs, BuildParams{
		LargeFrac: 0.25, Overestimation: 0.5,
		Source: PhasedUsage{}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: generation is deterministic for a fixed seed and load-monotone
// (higher load never yields fewer jobs).
func TestQuickLublinDeterministicAndMonotone(t *testing.T) {
	f := func(seed int64) bool {
		pLow := NewLublinParams(64, 0.4, 0.5)
		pHigh := NewLublinParams(64, 0.8, 0.5)
		a1, err := GenerateLublin(pLow, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		a2, err := GenerateLublin(pLow, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		if len(a1) != len(a2) {
			return false
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				return false
			}
		}
		b, err := GenerateLublin(pHigh, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		var la, lb float64
		for _, s := range a1 {
			la += float64(s.Nodes) * s.Runtime
		}
		for _, s := range b {
			lb += float64(s.Nodes) * s.Runtime
		}
		return lb >= la
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
