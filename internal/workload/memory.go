package workload

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// QuantileSampler draws samples from a distribution defined by its
// five-number summary (Table 3 of the paper), log-linearly interpolating
// the quantile function between the known points. Memory footprints span
// orders of magnitude, so interpolation happens in log space.
type QuantileSampler struct {
	qs   [5]float64 // quantile levels 0, .25, .5, .75, 1
	vals [5]float64
}

// ErrBadSummary reports an unusable five-number summary.
var ErrBadSummary = errors.New("workload: summary values not non-decreasing and positive")

// NewQuantileSampler builds a sampler from min, Q1, median, Q3, max.
// Values must be non-decreasing; zero minimums are nudged to 1 so the
// log-space interpolation is defined.
func NewQuantileSampler(min, q1, med, q3, max float64) (*QuantileSampler, error) {
	v := [5]float64{min, q1, med, q3, max}
	for i := range v {
		if v[i] < 0 {
			return nil, ErrBadSummary
		}
		if v[i] == 0 {
			v[i] = 1
		}
		if i > 0 && v[i] < v[i-1] {
			return nil, ErrBadSummary
		}
	}
	return &QuantileSampler{qs: [5]float64{0, 0.25, 0.5, 0.75, 1}, vals: v}, nil
}

// Quantile evaluates the interpolated quantile function at q in [0,1].
func (s *QuantileSampler) Quantile(q float64) float64 {
	if q <= 0 {
		return s.vals[0]
	}
	if q >= 1 {
		return s.vals[4]
	}
	i := sort.SearchFloat64s(s.qs[:], q)
	// q is strictly between qs[i-1] and qs[i] (or equals qs[i]).
	if s.qs[i] == q {
		return s.vals[i]
	}
	f := (q - s.qs[i-1]) / (s.qs[i] - s.qs[i-1])
	lo, hi := math.Log(s.vals[i-1]), math.Log(s.vals[i])
	return math.Exp(lo + f*(hi-lo))
}

// Sample draws one value.
func (s *QuantileSampler) Sample(rng *rand.Rand) float64 {
	return s.Quantile(rng.Float64())
}

// Per-node peak memory (MB) distributions from the paper's Table 3.
// NormalMemorySampler covers jobs that fit a normal (64 GB) node;
// LargeMemorySampler covers jobs that need a large (128 GB) node.
func NormalMemorySampler() *QuantileSampler {
	s, err := NewQuantileSampler(1, 4037, 8089, 15341, 65532)
	if err != nil {
		panic(err)
	}
	return s
}

// LargeMemorySampler covers the paper's large-memory job distribution.
func LargeMemorySampler() *QuantileSampler {
	s, err := NewQuantileSampler(65538, 76176, 86961, 99956, 130046)
	if err != nil {
		panic(err)
	}
	return s
}

// Bucket is one row of the paper's Table 2 histogram: per-node peak memory
// in GB, [Lo, Hi) — together with the share of jobs falling in it.
type Bucket struct {
	LoGB, HiGB float64
	Share      float64
}

// MemoryDist is a bucketed memory distribution (Table 2 style).
type MemoryDist []Bucket

// Table 2 of the paper, "Synthetic" columns (adapted from the ARCHER
// survey): share of jobs per max-memory bucket, for all jobs and broken
// down by job size (Normal ≤ 32 nodes, Large > 32 nodes).
var (
	ArcherAll = MemoryDist{
		{0, 12, 0.610}, {12, 24, 0.186}, {24, 48, 0.115}, {48, 96, 0.069}, {96, 128, 0.020},
	}
	ArcherNormalSize = MemoryDist{
		{0, 12, 0.695}, {12, 24, 0.194}, {24, 48, 0.077}, {48, 96, 0.030}, {96, 128, 0.004},
	}
	ArcherLargeSize = MemoryDist{
		{0, 12, 0.530}, {12, 24, 0.169}, {24, 48, 0.148}, {48, 96, 0.112}, {96, 128, 0.042},
	}
	// GrizzlyAll is Table 2's Grizzly column, used to calibrate the
	// synthetic Grizzly dataset.
	GrizzlyAll = MemoryDist{
		{0, 12, 0.733}, {12, 24, 0.124}, {24, 48, 0.082}, {48, 96, 0.057}, {96, 128, 0.005},
	}
	GrizzlyNormalSize = MemoryDist{
		{0, 12, 0.635}, {12, 24, 0.202}, {24, 48, 0.085}, {48, 96, 0.070}, {96, 128, 0.008},
	}
	GrizzlyLargeSize = MemoryDist{
		{0, 12, 0.778}, {12, 24, 0.089}, {24, 48, 0.080}, {48, 96, 0.050}, {96, 128, 0.003},
	}
)

// Validate checks the distribution sums to ~1 with ordered buckets.
func (d MemoryDist) Validate() error {
	var sum float64
	for i, b := range d {
		if b.LoGB < 0 || b.HiGB <= b.LoGB || b.Share < 0 {
			return errors.New("workload: malformed bucket")
		}
		if i > 0 && b.LoGB < d[i-1].HiGB {
			return errors.New("workload: overlapping buckets")
		}
		sum += b.Share
	}
	if math.Abs(sum-1) > 0.02 {
		return errors.New("workload: bucket shares do not sum to 1")
	}
	return nil
}

// SampleMB draws a per-node peak memory value in MB: a bucket by share,
// then log-uniform within the bucket (memory use is heavy-tailed toward
// the low end of each bucket).
func (d MemoryDist) SampleMB(rng *rand.Rand) int64 {
	u := rng.Float64()
	var acc float64
	b := d[len(d)-1]
	for _, bk := range d {
		acc += bk.Share
		if u <= acc {
			b = bk
			break
		}
	}
	lo := b.LoGB * 1024
	if lo < 1 {
		lo = 1
	}
	hi := b.HiGB * 1024
	v := math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
	mb := int64(v)
	if mb < 1 {
		mb = 1
	}
	return mb
}

// Histogram classifies per-node peak values (MB) into d's buckets and
// returns the observed share per bucket; values outside all buckets are
// clamped into the nearest one.
func (d MemoryDist) Histogram(valuesMB []int64) []float64 {
	shares := make([]float64, len(d))
	if len(valuesMB) == 0 {
		return shares
	}
	for _, v := range valuesMB {
		gb := float64(v) / 1024
		idx := len(d) - 1
		for i, b := range d {
			if gb < b.HiGB {
				idx = i
				break
			}
		}
		shares[idx]++
	}
	for i := range shares {
		shares[i] /= float64(len(valuesMB))
	}
	return shares
}

// Overestimate converts a true peak into the user's request given an
// overestimation factor: +0.60 means "demand is 60 % above the peak".
func Overestimate(peakMB int64, factor float64) int64 {
	if factor < 0 {
		factor = 0
	}
	return int64(float64(peakMB) * (1 + factor))
}
