package workload

import (
	"math"
	"math/rand"
)

// Lublin–Feitelson workload model (JPDC 2003), the second classic
// synthetic-workload generator alongside CIRNE. Jobs have:
//
//   - sizes drawn from a two-stage log-uniform distribution with a serial
//     fraction and a strong power-of-two bias,
//   - runtimes from a hyper-gamma distribution whose mixing weight depends
//     on the job size (bigger jobs run longer on average), and
//   - arrivals from a gamma inter-arrival process modulated by the daily
//     cycle.
//
// Parameter values follow the published batch-partition fits, lightly
// rounded; Scale-sensitive fields (MaxNodes, target load) work like the
// CIRNE generator's.

// LublinParams parameterises the generator.
type LublinParams struct {
	MaxNodes    int
	Days        float64
	Load        float64
	SystemNodes int

	SerialFrac float64 // P(1-node job); batch fit ≈ 0.244
	Pow2Frac   float64 // P(size snaps to a power of two) ≈ 0.625
	// Two-stage uniform over log2(size): low range [ULow, UMed] with
	// probability UProb, high range [UMed, UHi] otherwise.
	ULow, UMed, UHi float64
	UProb           float64

	// Hyper-gamma runtime: Gamma(A1,B1) with weight P, Gamma(A2,B2)
	// with 1−P; P decreases linearly with log2(size).
	A1, B1, A2, B2 float64
	PBase, PSlope  float64

	// Gamma inter-arrival shape (rate is derived from the target load).
	ArrivalShape float64
	DayAmplitude float64

	MinRuntime, MaxRuntime float64
	LimitAccuracyMin       float64
}

// NewLublinParams returns the batch-partition defaults for a system of the
// given size and target load.
func NewLublinParams(systemNodes int, load, days float64) LublinParams {
	maxNodes := 128
	return LublinParams{
		MaxNodes:         maxNodes,
		Days:             days,
		Load:             load,
		SystemNodes:      systemNodes,
		SerialFrac:       0.244,
		Pow2Frac:         0.625,
		ULow:             0.8,
		UMed:             4.5,
		UHi:              math.Log2(float64(maxNodes)),
		UProb:            0.70,
		A1:               4.2,
		B1:               900,  // short mode: mean ≈ 1 h
		A2:               12.0, // long mode: mean ≈ 12 h
		B2:               3600,
		PBase:            0.85,
		PSlope:           0.05,
		ArrivalShape:     2.0,
		DayAmplitude:     0.6,
		MinRuntime:       60,
		MaxRuntime:       5 * 86400,
		LimitAccuracyMin: 0.2,
	}
}

func (p *LublinParams) validate() error {
	switch {
	case p.MaxNodes < 1, p.SystemNodes < 1:
		return ErrParams
	case p.Days <= 0, p.Load <= 0 || p.Load > 1:
		return ErrParams
	case p.SerialFrac < 0 || p.SerialFrac > 1, p.Pow2Frac < 0 || p.Pow2Frac > 1:
		return ErrParams
	case p.ULow < 0 || p.UMed < p.ULow || p.UHi < p.UMed:
		return ErrParams
	case p.UProb < 0 || p.UProb > 1:
		return ErrParams
	case p.A1 <= 0 || p.B1 <= 0 || p.A2 <= 0 || p.B2 <= 0:
		return ErrParams
	case p.ArrivalShape <= 0:
		return ErrParams
	case p.MinRuntime <= 0 || p.MaxRuntime < p.MinRuntime:
		return ErrParams
	case p.LimitAccuracyMin <= 0 || p.LimitAccuracyMin > 1:
		return ErrParams
	case p.DayAmplitude < 0 || p.DayAmplitude >= 1:
		return ErrParams
	}
	return nil
}

// GenerateLublin produces a job trace meeting the target load, sorted by
// submission time.
func GenerateLublin(p LublinParams, rng *rand.Rand) ([]Spec, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	span := p.Days * 86400
	targetNodeSec := p.Load * float64(p.SystemNodes) * span

	var specs []Spec
	var accum float64
	for accum < targetNodeSec {
		nodes := p.sampleSize(rng)
		runtime := p.sampleRuntime(rng, nodes)
		limit := runtime / (p.LimitAccuracyMin + rng.Float64()*(1-p.LimitAccuracyMin))
		specs = append(specs, Spec{Nodes: nodes, Runtime: runtime, Limit: limit})
		accum += float64(nodes) * runtime
	}

	// Gamma inter-arrivals scaled to spread the jobs over the span,
	// then thinned through the diurnal cycle. The final times are
	// re-scaled to the span so the load target holds regardless of the
	// random walk's endpoint.
	times := make([]float64, len(specs))
	t := 0.0
	meanGap := span / float64(len(specs)+1)
	for i := range times {
		gap := rgamma(rng, p.ArrivalShape) * meanGap / p.ArrivalShape
		hour := math.Mod(t/3600, 24)
		w := 1 + p.DayAmplitude*math.Cos(2*math.Pi*(hour-14)/24)
		t += gap / w // busy hours compress the gaps
		times[i] = t
	}
	if t > 0 {
		f := span * 0.999 / t
		for i := range times {
			times[i] *= f
		}
	}
	for i := range specs {
		specs[i].Submit = times[i]
	}
	return specs, nil
}

func (p *LublinParams) sampleSize(rng *rand.Rand) int {
	if rng.Float64() < p.SerialFrac {
		return 1
	}
	var x float64
	if rng.Float64() < p.UProb {
		x = p.ULow + rng.Float64()*(p.UMed-p.ULow)
	} else {
		x = p.UMed + rng.Float64()*(p.UHi-p.UMed)
	}
	var n int
	if rng.Float64() < p.Pow2Frac {
		n = 1 << int(x+0.5)
	} else {
		n = int(math.Exp2(x) + 0.5)
	}
	if n < 1 {
		n = 1
	}
	if n > p.MaxNodes {
		n = p.MaxNodes
	}
	return n
}

func (p *LublinParams) sampleRuntime(rng *rand.Rand, nodes int) float64 {
	// Mixing probability of the short mode decreases with size.
	mix := p.PBase - p.PSlope*math.Log2(float64(nodes)+1)
	if mix < 0.1 {
		mix = 0.1
	}
	var r float64
	if rng.Float64() < mix {
		r = rgamma(rng, p.A1) * p.B1 / p.A1
	} else {
		r = rgamma(rng, p.A2) * p.B2 / p.A2 * 12 // long mode mean ≈ 12·B2/…
	}
	if r < p.MinRuntime {
		r = p.MinRuntime
	}
	if r > p.MaxRuntime {
		r = p.MaxRuntime
	}
	return r
}

// rgamma draws from Gamma(shape, 1) using Marsaglia–Tsang, with the
// standard boost for shape < 1.
func rgamma(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^{1/a}
		return rgamma(rng, shape+1) * math.Pow(rng.Float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
