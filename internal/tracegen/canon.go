package tracegen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"reflect"
	"strings"
)

// Canon accumulates a canonical byte encoding of a parameter set and seals
// it into a SHA-256 hex digest. It is the content-addressing scheme behind
// Key, exported so other caches (the dmpd result cache keys whole scenario
// specs) share one canonical hashing discipline: every field is folded by
// name, floats as exact IEEE-754 bit patterns, so two semantically equal
// parameter sets always collide and a reordered struct never splits
// entries.
type Canon struct {
	b strings.Builder
}

// NewCanon starts a canonical encoding under a domain label ("tracegen/v1").
// Distinct domains can never collide, whatever their fields.
func NewCanon(domain string) *Canon {
	c := &Canon{}
	c.b.WriteString(domain)
	c.b.WriteString("|")
	return c
}

// Str folds a name=string field.
func (c *Canon) Str(name, v string) {
	fmt.Fprintf(&c.b, "%s=%s|", name, v)
}

// Int folds a name=integer field.
func (c *Canon) Int(name string, v int64) {
	fmt.Fprintf(&c.b, "%s=%d|", name, v)
}

// Float folds a float64 as its exact bit pattern, so -0.0, denormals, and
// NaN payloads all key distinctly and no formatting round-trip is involved.
func (c *Canon) Float(name string, v float64) {
	fmt.Fprintf(&c.b, "%s=%016x|", name, math.Float64bits(v))
}

// Struct folds every field of a flat numeric struct (the workload
// parameterisations) into the encoding, by field name so the key survives
// field reordering and new fields cannot be forgotten. Floats are folded as
// exact bit patterns. Non-numeric fields panic: the canonical scheme only
// defines an encoding for flat numeric parameter blocks.
func (c *Canon) Struct(s any) {
	v := reflect.ValueOf(s)
	t := v.Type()
	fmt.Fprintf(&c.b, "%s{", t.Name())
	for i := 0; i < t.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Float64:
			c.Float(t.Field(i).Name, f.Float())
		case reflect.Int, reflect.Int64:
			c.Int(t.Field(i).Name, f.Int())
		default:
			panic(fmt.Sprintf("tracegen: unhashable field %s.%s (%s)",
				t.Name(), t.Field(i).Name, f.Kind()))
		}
	}
	c.b.WriteString("}")
}

// Sum seals the encoding into a lowercase SHA-256 hex digest.
func (c *Canon) Sum() string {
	sum := sha256.Sum256([]byte(c.b.String()))
	return hex.EncodeToString(sum[:])
}
