package tracegen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"

	"dismem/internal/workload"
)

// Content-addressed, single-flight memoization of Run. Figure pipelines,
// replication seeds, and user scenarios all request traces through Cached;
// concurrent requests for the same canonical Params block on one
// generation and then share the same immutable *Output. Callers must
// treat a cached Output (Jobs included) as read-only — anything that needs
// to mutate a job must clone it first.

// cacheEntry is one single-flight slot: the first requester generates and
// closes done; everyone else blocks on done and reads out/err.
type cacheEntry struct {
	done chan struct{}
	out  *Output
	err  error
}

var cache = struct {
	mu     sync.Mutex
	m      map[string]*cacheEntry
	hits   int64
	misses int64
}{m: map[string]*cacheEntry{}}

// Key returns the canonical content hash of p. Params that produce the
// same generation — default model spelled "" or "cirne", a nil Cirne
// versus a pointer holding the defaults, distinct pointers with equal
// values, zero versus explicit default knobs — map to the same key, and
// the model's unused parameter block (Lublin under "cirne" and vice versa)
// is excluded so it cannot split entries.
func Key(p Params) string {
	p.normalize()
	model := p.Model
	if model == "" {
		model = "cirne"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tracegen/v1|model=%s|nodes=%d|", model, p.SystemNodes)
	fbits(&b, "load", p.Load)
	fbits(&b, "days", p.Days)
	fbits(&b, "large", p.LargeFrac)
	fbits(&b, "over", p.Overestimation)
	fmt.Fprintf(&b, "normmb=%d|gcoll=%d|", p.NormalNodeMB, p.GoogleCollections)
	fbits(&b, "rdp", p.RDPEpsilonFrac)
	fmt.Fprintf(&b, "cores=%d|seed=%d|", p.CoresPerNode, p.Seed)
	switch model {
	case "cirne":
		// Mirror Run: the pointer only overrides the default
		// parameterisation, and its SystemNodes/Load/Days are always
		// taken from Params.
		cp := workload.NewCirneParams(p.SystemNodes, p.Load, p.Days)
		if p.Cirne != nil {
			cp = *p.Cirne
			cp.SystemNodes = p.SystemNodes
			cp.Load = p.Load
			cp.Days = p.Days
		}
		hashFlatStruct(&b, cp)
	case "lublin":
		lp := workload.NewLublinParams(p.SystemNodes, p.Load, p.Days)
		if p.Lublin != nil {
			lp = *p.Lublin
			lp.SystemNodes = p.SystemNodes
			lp.Load = p.Load
			lp.Days = p.Days
		}
		hashFlatStruct(&b, lp)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

func fbits(b *strings.Builder, name string, f float64) {
	fmt.Fprintf(b, "%s=%016x|", name, math.Float64bits(f))
}

// hashFlatStruct folds every field of a flat numeric struct (the workload
// parameterisations) into the key, by field name so the key survives field
// reordering and new fields cannot be forgotten. Floats are folded as
// exact bit patterns.
func hashFlatStruct(b *strings.Builder, s any) {
	v := reflect.ValueOf(s)
	t := v.Type()
	fmt.Fprintf(b, "%s{", t.Name())
	for i := 0; i < t.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Float64:
			fbits(b, t.Field(i).Name, f.Float())
		case reflect.Int, reflect.Int64:
			fmt.Fprintf(b, "%s=%d|", t.Field(i).Name, f.Int())
		default:
			panic(fmt.Sprintf("tracegen: unhashable field %s.%s (%s)",
				t.Name(), t.Field(i).Name, f.Kind()))
		}
	}
	b.WriteString("}")
}

// Cached returns the memoized pipeline output for p, generating it at most
// once per canonical key no matter how many goroutines ask concurrently.
// Generation is deterministic, so errors are cached alongside outputs.
func Cached(p Params) (*Output, error) {
	k := Key(p)
	cache.mu.Lock()
	if e, ok := cache.m[k]; ok {
		cache.hits++
		cache.mu.Unlock()
		<-e.done
		return e.out, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	cache.m[k] = e
	cache.misses++
	cache.mu.Unlock()

	e.out, e.err = Run(p)
	close(e.done)
	return e.out, e.err
}

// ResetCache drops every cached trace and zeroes the hit/miss counters.
// Benchmarks use it to measure cold regenerations; long-lived processes
// can use it to release trace memory between campaigns.
func ResetCache() {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	cache.m = map[string]*cacheEntry{}
	cache.hits, cache.misses = 0, 0
}

// CacheStats reports the number of cache entries and the hit/miss counts
// since the last ResetCache. Misses count actual generator invocations:
// single-flight waiters are hits.
func CacheStats() (entries int, hits, misses int64) {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	return len(cache.m), cache.hits, cache.misses
}
