package tracegen

import (
	"sync"
	"sync/atomic"

	"dismem/internal/workload"
)

// Content-addressed, single-flight memoization of Run. Figure pipelines,
// replication seeds, and user scenarios all request traces through Cached;
// concurrent requests for the same canonical Params block on one
// generation and then share the same immutable *Output. Callers must
// treat a cached Output (Jobs included) as read-only — anything that needs
// to mutate a job must clone it first.

// cacheEntry is one single-flight slot: the first requester generates and
// closes done; everyone else blocks on done and reads out/err.
type cacheEntry struct {
	done chan struct{}
	out  *Output
	err  error
}

var cache = struct {
	mu sync.Mutex
	m  map[string]*cacheEntry //dmp:guardedby(mu)
	// The hit/miss counters are atomics, not mutex-guarded fields: the
	// dmpd daemon's /metrics endpoint reads CacheStats concurrently with
	// in-flight generations, and a scrape must never contend with (or wait
	// behind) the cache lock.
	hits   atomic.Int64 //dmp:atomiconly
	misses atomic.Int64 //dmp:atomiconly
}{m: map[string]*cacheEntry{}}

// Key returns the canonical content hash of p. Params that produce the
// same generation — default model spelled "" or "cirne", a nil Cirne
// versus a pointer holding the defaults, distinct pointers with equal
// values, zero versus explicit default knobs — map to the same key, and
// the model's unused parameter block (Lublin under "cirne" and vice versa)
// is excluded so it cannot split entries.
func Key(p Params) string {
	p.normalize()
	model := p.Model
	if model == "" {
		model = "cirne"
	}
	c := NewCanon("tracegen/v1")
	c.Str("model", model)
	c.Int("nodes", int64(p.SystemNodes))
	c.Float("load", p.Load)
	c.Float("days", p.Days)
	c.Float("large", p.LargeFrac)
	c.Float("over", p.Overestimation)
	c.Int("normmb", p.NormalNodeMB)
	c.Int("gcoll", int64(p.GoogleCollections))
	c.Float("rdp", p.RDPEpsilonFrac)
	c.Int("cores", int64(p.CoresPerNode))
	c.Int("seed", p.Seed)
	switch model {
	case "cirne":
		// Mirror Run: the pointer only overrides the default
		// parameterisation, and its SystemNodes/Load/Days are always
		// taken from Params.
		cp := workload.NewCirneParams(p.SystemNodes, p.Load, p.Days)
		if p.Cirne != nil {
			cp = *p.Cirne
			cp.SystemNodes = p.SystemNodes
			cp.Load = p.Load
			cp.Days = p.Days
		}
		c.Struct(cp)
	case "lublin":
		lp := workload.NewLublinParams(p.SystemNodes, p.Load, p.Days)
		if p.Lublin != nil {
			lp = *p.Lublin
			lp.SystemNodes = p.SystemNodes
			lp.Load = p.Load
			lp.Days = p.Days
		}
		c.Struct(lp)
	}
	return c.Sum()
}

// Cached returns the memoized pipeline output for p, generating it at most
// once per canonical key no matter how many goroutines ask concurrently.
// Generation is deterministic, so errors are cached alongside outputs.
func Cached(p Params) (*Output, error) {
	k := Key(p)
	cache.mu.Lock()
	if e, ok := cache.m[k]; ok {
		cache.mu.Unlock()
		cache.hits.Add(1)
		<-e.done
		return e.out, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	cache.m[k] = e
	cache.mu.Unlock()
	cache.misses.Add(1)

	e.out, e.err = Run(p)
	close(e.done)
	return e.out, e.err
}

// ResetCache drops every cached trace and zeroes the hit/miss counters.
// Benchmarks use it to measure cold regenerations; long-lived processes
// can use it to release trace memory between campaigns.
func ResetCache() {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	cache.m = map[string]*cacheEntry{}
	cache.hits.Store(0)
	cache.misses.Store(0)
}

// CacheStats reports the number of cache entries and the hit/miss counts
// since the last ResetCache. Misses count actual generator invocations:
// single-flight waiters are hits. The counters are safe to read while
// generations are in flight (the daemon's /metrics scrapes them), so a
// (hits, misses) pair is a consistent snapshot only when the cache is
// quiescent.
func CacheStats() (entries int, hits, misses int64) {
	cache.mu.Lock()
	entries = len(cache.m)
	cache.mu.Unlock()
	return entries, cache.hits.Load(), cache.misses.Load()
}
