package tracegen

import (
	"sync"
	"testing"

	"dismem/internal/workload"
)

func benchParams(seed int64) Params {
	return Params{
		SystemNodes:       16,
		Load:              0.8,
		Days:              0.05,
		LargeFrac:         0.5,
		Overestimation:    0.6,
		GoogleCollections: 100,
		Seed:              seed,
	}
}

// Equal Params must hit one cache entry even when their model pointers are
// different allocations, defaults are spelled explicitly, or the unused
// model block differs.
func TestKeyCanonicalization(t *testing.T) {
	base := benchParams(1)

	c1 := workload.NewCirneParams(base.SystemNodes, base.Load, base.Days)
	c2 := c1 // same values, distinct pointer below
	withPtr1, withPtr2 := base, base
	withPtr1.Cirne = &c1
	withPtr2.Cirne = &c2
	if Key(withPtr1) != Key(withPtr2) {
		t.Fatal("distinct Cirne pointers with equal values produced different keys")
	}
	if Key(base) != Key(withPtr1) {
		t.Fatal("nil Cirne and explicit default CirneParams produced different keys")
	}

	// The pointer's SystemNodes/Load/Days are overridden by Params in Run,
	// so a stale copy of them must not split the key.
	stale := c1
	stale.SystemNodes, stale.Load, stale.Days = 9999, 0.1, 42
	withStale := base
	withStale.Cirne = &stale
	if Key(base) != Key(withStale) {
		t.Fatal("overridden Cirne fields leaked into the key")
	}

	spelled := base
	spelled.Model = "cirne"
	if Key(base) != Key(spelled) {
		t.Fatal(`model "" and "cirne" produced different keys`)
	}

	defaults := base
	defaults.NormalNodeMB = 64 * 1024
	defaults.RDPEpsilonFrac = 0.05
	defaults.CoresPerNode = 32
	if Key(base) != Key(defaults) {
		t.Fatal("zero knobs and explicit defaults produced different keys")
	}

	// Under the cirne model the Lublin block is unused and must not
	// split entries.
	lp := workload.NewLublinParams(base.SystemNodes, base.Load, base.Days)
	withLublin := base
	withLublin.Lublin = &lp
	if Key(base) != Key(withLublin) {
		t.Fatal("unused Lublin block leaked into a cirne key")
	}

	// Distinguishing fields must distinguish.
	for name, q := range map[string]Params{
		"seed":   benchParams(2),
		"load":   {SystemNodes: 16, Load: 0.7, Days: 0.05, LargeFrac: 0.5, Overestimation: 0.6, GoogleCollections: 100, Seed: 1},
		"model":  {SystemNodes: 16, Load: 0.8, Days: 0.05, LargeFrac: 0.5, Overestimation: 0.6, GoogleCollections: 100, Seed: 1, Model: "lublin"},
		"overst": {SystemNodes: 16, Load: 0.8, Days: 0.05, LargeFrac: 0.5, Overestimation: 0, GoogleCollections: 100, Seed: 1},
	} {
		if Key(q) == Key(base) {
			t.Fatalf("params differing in %s collided", name)
		}
	}

	// A modified Cirne knob (not one of the overridden three) must
	// distinguish.
	tweaked := c1
	tweaked.MaxNodes = c1.MaxNodes + 1
	withTweak := base
	withTweak.Cirne = &tweaked
	if Key(base) == Key(withTweak) {
		t.Fatal("Cirne.MaxNodes change did not change the key")
	}
}

// Single-flight: many concurrent requests for the same Params invoke the
// generator exactly once and share one Output pointer.
func TestCachedSingleFlight(t *testing.T) {
	ResetCache()
	const goroutines = 16
	p := benchParams(1)
	outs := make([]*Output, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := Cached(p)
			if err != nil {
				t.Error(err)
				return
			}
			outs[i] = out
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if outs[i] != outs[0] {
			t.Fatal("concurrent callers received different Output instances")
		}
	}
	entries, hits, misses := CacheStats()
	if misses != 1 {
		t.Fatalf("generator invoked %d times for one distinct Params, want 1", misses)
	}
	if entries != 1 || hits != goroutines-1 {
		t.Fatalf("stats = %d entries, %d hits; want 1 entry, %d hits", entries, hits, goroutines-1)
	}
}

// Concurrent access across a mix of duplicate and distinct Params: run
// under -race in CI. The generator must fire exactly once per distinct
// canonical key.
func TestCachedConcurrentDistinct(t *testing.T) {
	ResetCache()
	seeds := []int64{1, 2, 3, 4}
	const dup = 6
	var wg sync.WaitGroup
	for _, s := range seeds {
		for d := 0; d < dup; d++ {
			wg.Add(1)
			go func(s int64) {
				defer wg.Done()
				out, err := Cached(benchParams(s))
				if err != nil {
					t.Error(err)
					return
				}
				if len(out.Jobs) == 0 {
					t.Error("empty cached trace")
				}
			}(s)
		}
	}
	wg.Wait()
	entries, _, misses := CacheStats()
	if misses != int64(len(seeds)) || entries != len(seeds) {
		t.Fatalf("generator ran %d times over %d entries, want %d per distinct Params",
			misses, entries, len(seeds))
	}
}

// Cached output must be bit-identical to a fresh uncached generation: same
// jobs, same order, same float64 bit patterns in submit times and
// runtimes.
func TestCachedMatchesUncached(t *testing.T) {
	ResetCache()
	p := benchParams(1)
	cached, err := Cached(p)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cached.Jobs) != len(fresh.Jobs) {
		t.Fatalf("job counts differ: %d cached vs %d fresh", len(cached.Jobs), len(fresh.Jobs))
	}
	for i := range cached.Jobs {
		c, f := cached.Jobs[i], fresh.Jobs[i]
		if c.ID != f.ID || c.SubmitTime != f.SubmitTime || c.Nodes != f.Nodes ||
			c.RequestMB != f.RequestMB || c.BaseRuntime != f.BaseRuntime {
			t.Fatalf("job %d diverged: %+v vs %+v", i, c, f)
		}
	}
}

// TestCacheStatsConcurrentWithCached hammers the introspection path while
// generations are in flight: the daemon's /metrics handler calls CacheStats
// on every scrape, concurrently with request handlers driving Cached, so
// the counters must be readable without data races and without waiting on
// an in-progress generation. Run under -race in CI.
func TestCacheStatsConcurrentWithCached(t *testing.T) {
	ResetCache()
	const readers, writers, rounds = 4, 4, 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				entries, hits, misses := CacheStats()
				if entries < 0 || hits < 0 || misses < 0 {
					t.Error("negative cache stats")
					return
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < rounds; i++ {
				// Half duplicate keys (single-flight waits), half distinct
				// (fresh generations), so readers overlap both paths.
				if _, err := Cached(benchParams(int64(1 + i%2*w))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	entries, hits, misses := CacheStats()
	if entries == 0 || hits+misses < writers*rounds {
		t.Fatalf("stats lost updates: %d entries, %d hits, %d misses", entries, hits, misses)
	}
}

// Canon is the exported canonical-hashing scheme; the scenario result cache
// keys on it, so its basic algebra — same fields same digest, any field
// difference a different digest, domains never colliding — is pinned here.
func TestCanon(t *testing.T) {
	build := func(domain string, f float64) string {
		c := NewCanon(domain)
		c.Str("s", "x")
		c.Int("i", 7)
		c.Float("f", f)
		return c.Sum()
	}
	if build("d/v1", 1.5) != build("d/v1", 1.5) {
		t.Fatal("equal encodings produced different digests")
	}
	if build("d/v1", 1.5) == build("d/v2", 1.5) {
		t.Fatal("distinct domains collided")
	}
	if build("d/v1", 1.5) == build("d/v1", 1.5000001) {
		t.Fatal("distinct floats collided")
	}
	// Float folds exact bit patterns: -0.0 and +0.0 must key differently.
	if build("d/v1", 0.0) == build("d/v1", negZero()) {
		t.Fatal("-0.0 and +0.0 collided")
	}
	// Struct folds flat numeric blocks by field name.
	type block struct {
		A int
		B float64
	}
	sum := func(b block) string {
		c := NewCanon("d/v1")
		c.Struct(b)
		return c.Sum()
	}
	if sum(block{1, 2}) == sum(block{1, 3}) {
		t.Fatal("struct field change did not change the digest")
	}
}

func negZero() float64 { z := 0.0; return -z }

func TestResetCache(t *testing.T) {
	ResetCache()
	if _, err := Cached(benchParams(1)); err != nil {
		t.Fatal(err)
	}
	ResetCache()
	entries, hits, misses := CacheStats()
	if entries != 0 || hits != 0 || misses != 0 {
		t.Fatalf("stats after reset = %d/%d/%d, want zeros", entries, hits, misses)
	}
	if _, err := Cached(benchParams(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, misses := CacheStats(); misses != 1 {
		t.Fatal("reset did not force a fresh generation")
	}
}
