package tracegen

import (
	"bytes"
	"math"
	"testing"

	"dismem/internal/swf"
)

func smallParams() Params {
	return Params{
		SystemNodes:       64,
		Load:              0.7,
		Days:              1,
		LargeFrac:         0.5,
		Overestimation:    0.6,
		GoogleCollections: 1500,
		Seed:              1,
	}
}

func TestRunPipeline(t *testing.T) {
	out, err := Run(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) == 0 || len(out.Jobs) != len(out.Specs) {
		t.Fatalf("jobs=%d specs=%d", len(out.Jobs), len(out.Specs))
	}
	for _, j := range out.Jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if j.RequestMB < j.PeakUsageMB() {
			t.Fatalf("job %d: request %d below peak %d", j.ID, j.RequestMB, j.PeakUsageMB())
		}
	}
	// Achieved large-memory mix near the requested 50 %.
	if f := out.LargeJobFraction(); math.Abs(f-0.5) > 0.15 {
		t.Fatalf("large fraction = %g, want ≈0.5", f)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		ja, jb := a.Jobs[i], b.Jobs[i]
		if ja.SubmitTime != jb.SubmitTime || ja.Nodes != jb.Nodes ||
			ja.RequestMB != jb.RequestMB || ja.BaseRuntime != jb.BaseRuntime {
			t.Fatalf("job %d differs between identical runs", i)
		}
	}
}

func TestOverestimationAffectsRequestsOnly(t *testing.T) {
	p0 := smallParams()
	p0.Overestimation = 0
	p6 := smallParams()
	p6.Overestimation = 0.6
	a, err := Run(p0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		if a.Jobs[i].PeakUsageMB() != b.Jobs[i].PeakUsageMB() {
			t.Fatalf("job %d: peaks differ across overestimation settings", i)
		}
		want := int64(float64(a.Jobs[i].PeakUsageMB()) * 1.6)
		if b.Jobs[i].RequestMB != want {
			t.Fatalf("job %d: request %d, want %d", i, b.Jobs[i].RequestMB, want)
		}
	}
	// +0 %: request equals peak (the paper's conservative baseline).
	for _, j := range a.Jobs {
		if j.RequestMB != j.PeakUsageMB() {
			t.Fatalf("job %d: +0%% request %d != peak %d", j.ID, j.RequestMB, j.PeakUsageMB())
		}
	}
}

func TestWriteSWF(t *testing.T) {
	out, err := Run(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := out.WriteSWF(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := swf.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Records) != len(out.Jobs) {
		t.Fatalf("SWF records = %d, want %d", len(f.Records), len(out.Jobs))
	}
	back, err := swf.ToJobs(f, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i].Nodes != out.Jobs[i].Nodes {
			t.Fatalf("job %d: node count lost in SWF round trip", i)
		}
	}
}

func TestLublinModel(t *testing.T) {
	p := smallParams()
	p.Model = "lublin"
	out, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) == 0 {
		t.Fatal("lublin model produced no jobs")
	}
	for _, j := range out.Jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUnknownModelRejected(t *testing.T) {
	p := smallParams()
	p.Model = "feitelson96"
	if _, err := Run(p); err == nil {
		t.Fatal("unknown model accepted")
	}
}
