package dismem_test

// The facade test uses only the public dismem package, exactly as a
// downstream module would.

import (
	"bytes"
	"testing"

	"dismem"
)

func TestFacadeSimulate(t *testing.T) {
	jobs := []*dismem.Job{{
		ID:          1,
		Nodes:       2,
		RequestMB:   96 * 1024,
		LimitSec:    7200,
		BaseRuntime: 3600,
		Usage:       dismem.ConstantUsage(20 * 1024),
		Profile:     dismem.MatchProfile(2, 3600),
	}}
	tl := dismem.NewTimeline()
	cfg := dismem.Config{
		Cluster:  dismem.ClusterConfig{Nodes: 4, Cores: 32, NormalMB: 64 * 1024},
		Policy:   dismem.Dynamic,
		Backfill: dismem.EASYBackfill,
		OOM:      dismem.FailRestart,
		Observer: tl,
	}
	res, err := dismem.Simulate(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// The job borrows a third of its memory remotely, so it runs at a
	// small contention slowdown above its base runtime.
	if rt := res.Records[0].ResponseTime(); rt < 3600 || rt > 3600*1.2 {
		t.Fatalf("response = %g, want 3600 plus a small slowdown", rt)
	}
	if len(tl.Samples) == 0 {
		t.Fatal("timeline observer recorded nothing")
	}
}

func TestFacadeTraceAndBundle(t *testing.T) {
	tr, err := dismem.GenerateTrace(dismem.TraceParams{
		SystemNodes: 32, Load: 0.5, Days: 0.25,
		LargeFrac: 0.25, Overestimation: 0.6,
		GoogleCollections: 600, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) == 0 {
		t.Fatal("empty trace")
	}
	var buf bytes.Buffer
	if err := dismem.WriteBundle(&buf, tr.Jobs); err != nil {
		t.Fatal(err)
	}
	back, err := dismem.ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tr.Jobs) {
		t.Fatalf("bundle round trip lost jobs: %d vs %d", len(back), len(tr.Jobs))
	}
	// And the loaded trace simulates (the default CIRNE model generates
	// jobs up to 128 nodes, so the system must be at least that large).
	res, err := dismem.Simulate(dismem.Config{
		Cluster: dismem.ClusterConfig{Nodes: 160, Cores: 32, NormalMB: 64 * 1024, LargeFrac: 1},
		Policy:  dismem.Static,
	}, back)
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible {
		t.Fatalf("infeasible: job %d", res.InfeasibleJob)
	}
}

func TestFacadeUsageTraceValidation(t *testing.T) {
	if _, err := dismem.NewUsageTrace(nil); err == nil {
		t.Fatal("empty trace accepted")
	}
	tr, err := dismem.NewUsageTrace([]dismem.UsagePoint{{T: 0, MB: 5}, {T: 10, MB: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Peak() != 9 {
		t.Fatalf("peak = %d", tr.Peak())
	}
}
