// Package dismem reproduces "Dynamic Memory Provisioning on Disaggregated
// HPC Systems" (Zacarias, Carpenter, Petrucci — SC-W 2023): a
// discrete-event simulator of a Slurm-managed cluster whose node memory is
// pooled system-wide, with three allocation policies (baseline, static
// disaggregated, dynamic disaggregated), the paper's trace-generation
// methodology, and a harness regenerating every table and figure of its
// evaluation.
//
// The implementation lives under internal/:
//
//	internal/core        the simulator (the paper's contribution)
//	internal/cluster     node + memory-pool ledger
//	internal/policy      baseline / static / dynamic allocation
//	internal/sched       queue, EASY backfill, conservative reservations
//	internal/slowdown    remote-memory contention model
//	internal/topology    3D torus interconnect
//	internal/memtrace    usage time series + RDP reduction
//	internal/workload    CIRNE + Lublin models, memory distributions
//	internal/tracegen    the Fig. 3 trace pipeline
//	internal/traces/...  synthetic Grizzly (LDMS) and Google (Borg) data
//	internal/swf         Standard Workload Format
//	internal/bundle      lossless simulator-input format
//	internal/slurmconf   slurm.conf parser/emitter
//	internal/metrics     ECDF, quantiles, fairness, cost model
//	internal/sweep       parallel scenario runner
//	internal/textplot    terminal charts
//	internal/experiments one driver per paper table/figure + ablations
//
// Entry points: the cmd/dmpsim, cmd/dmptrace and cmd/dmpexp binaries, and
// the runnable programs under examples/. The benchmarks in bench_test.go
// regenerate each table and figure at a reduced scale, and
// acceptance_test.go asserts the paper's qualitative claims.
package dismem
