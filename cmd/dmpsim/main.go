// Command dmpsim runs one disaggregated-memory scheduling simulation and
// prints a scenario summary: throughput, response-time quantiles,
// utilisation, OOM events, and cost-benefit.
//
// Usage:
//
//	dmpsim -policy dynamic -nodes 1024 -mem 75 -large-jobs 0.5 -overest 0.6
//	dmpsim -trace grizzly -policy static -mem 50
package main

import (
	"flag"
	"fmt"
	"os"

	"dismem/internal/bundle"
	"dismem/internal/core"
	"dismem/internal/experiments"
	"dismem/internal/job"
	"dismem/internal/metrics"
	"dismem/internal/policy"
	"dismem/internal/slurmconf"
	"dismem/internal/telemetry"
)

func main() {
	var (
		polName   = flag.String("policy", "dynamic", "allocation policy: baseline, static, dynamic")
		trace     = flag.String("trace", "synthetic", "trace: synthetic, grizzly, or a dismem bundle path")
		nodes     = flag.Int("nodes", 0, "system size (0 = preset default)")
		memPct    = flag.Int("mem", 100, "total system memory %: 37 43 50 57 62 75 87 100")
		largeFrac = flag.Float64("large-jobs", 0.5, "fraction of large-memory jobs (synthetic trace)")
		overest   = flag.Float64("overest", 0, "memory request overestimation factor (0.6 = +60%)")
		preset    = flag.String("preset", "quick", "scale preset: quick or full")
		confPath  = flag.String("conf", "", "slurm.conf-style configuration file (overrides -policy/-nodes/-mem)")
		timeline  = flag.String("timeline", "", "write an occupancy timeline CSV (t, alloc_mb, busy_nodes, queued, running) here")
		jobsCSV   = flag.String("jobs", "", "write per-job results (schedule, response, stretch, outcome) as CSV here")
		dumpConf  = flag.String("dump-conf", "", "write the resolved configuration as a slurm.conf file here")
		telPath   = flag.String("telemetry", "", "write a JSONL telemetry event log here (inspect with dmpobs)")
		telEvery  = flag.Float64("telemetry-interval", 300, "telemetry pool-sampling period in simulated seconds (0 = events only)")
		promPath  = flag.String("prom", "", "write Prometheus text-format run aggregates here")
		shards    = flag.Int("shards", 0, "cluster-ledger shard count (0 = single shard)")
		parallel  = flag.Bool("parallel", false, "windowed executor with parallel refresh phases (bit-identical results)")
		workers   = flag.Int("workers", 0, "parallel refresh worker count (0 = GOMAXPROCS; needs -parallel)")
		pressure  = flag.String("pressure", "global", "contention model: global (one system-wide rho) or domains (per-rack pressure domains)")
		domains   = flag.Int("domains", 0, "pressure-domain count (0 = derive from topology/shards; needs -pressure=domains)")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var pmode core.PressureMode
	switch *pressure {
	case "global":
		pmode = core.PressureGlobal
	case "domains":
		pmode = core.PressureDomains
	default:
		fail("unknown pressure mode %q (want global or domains)", *pressure)
	}
	var ws core.WindowStats

	var tl *core.Timeline
	if *timeline != "" {
		tl = core.NewTimeline()
	}

	// Telemetry: a nil recorder keeps the simulation's emit path at one
	// pointer compare, so it is only built when an output was requested.
	var rec *telemetry.Recorder
	var prom *telemetry.PromSink
	if *telPath != "" || *promPath != "" {
		var sinks telemetry.MultiSink
		if *telPath != "" {
			f, err := os.Create(*telPath)
			if err != nil {
				fail("telemetry: %v", err)
			}
			sinks = append(sinks, telemetry.NewJSONL(f))
		}
		if *promPath != "" {
			prom = telemetry.NewPromSink()
			sinks = append(sinks, prom)
		}
		var sink telemetry.Sink = sinks
		if len(sinks) == 1 {
			sink = sinks[0]
		}
		rec = telemetry.New(telemetry.Options{Sink: sink, SampleInterval: *telEvery})
	}

	var kind policy.Kind
	switch *polName {
	case "baseline":
		kind = policy.Baseline
	case "static":
		kind = policy.Static
	case "dynamic":
		kind = policy.Dynamic
	default:
		fail("unknown policy %q", *polName)
	}

	var p experiments.Preset
	switch *preset {
	case "quick":
		p = experiments.Quick()
	case "full":
		p = experiments.Full()
	default:
		fail("unknown preset %q", *preset)
	}
	p.Seed = *seed
	p.Shards = *shards
	p.Parallel = *parallel
	p.Workers = *workers

	mc, err := experiments.MemConfigByPct(*memPct)
	if err != nil {
		fail("%v", err)
	}

	var jobs []*job.Job
	sysNodes := p.SystemNodes
	switch *trace {
	case "synthetic":
		out, err := p.SyntheticTrace(*largeFrac, *overest)
		if err != nil {
			fail("trace generation: %v", err)
		}
		jobs = out.Jobs
	case "grizzly":
		jobs, err = p.GrizzlyTrace(*overest)
		if err != nil {
			fail("grizzly trace: %v", err)
		}
		sysNodes = p.GrizzlyNodes
	default:
		// Anything else is a bundle path written by dmptrace -bundle.
		f, err := os.Open(*trace)
		if err != nil {
			fail("unknown trace %q and no such bundle file: %v", *trace, err)
		}
		jobs, err = bundle.Read(f)
		f.Close()
		if err != nil {
			fail("bundle %s: %v", *trace, err)
		}
	}
	if *nodes > 0 {
		sysNodes = *nodes
	}

	var res *core.Result
	if *confPath != "" {
		// A slurm.conf file fully specifies the system and policy.
		f, err := os.Open(*confPath)
		if err != nil {
			fail("%v", err)
		}
		parsed, err := slurmconf.Parse(f)
		f.Close()
		if err != nil {
			fail("%s: %v", *confPath, err)
		}
		cfg, err := parsed.CoreConfig()
		if err != nil {
			fail("%s: %v", *confPath, err)
		}
		cfg.Seed = *seed
		if *shards > 0 {
			cfg.Cluster.Shards = *shards
		}
		if *parallel {
			cfg.Parallel = true
			cfg.Workers = *workers
		}
		if pmode != core.PressureGlobal {
			cfg.Pressure = pmode
			cfg.Domains = *domains
		}
		cfg.WindowStatsOut = &ws
		if tl != nil {
			cfg.Observer = tl
		}
		cfg.Telemetry = rec
		sysNodes = cfg.Cluster.Nodes
		kind = cfg.Policy
		mc = experiments.MemConfig{LabelPct: *memPct, NormalMB: cfg.Cluster.NormalMB, LargeFrac: cfg.Cluster.LargeFrac}
		s, err := core.New(cfg, jobs)
		if err != nil {
			fail("simulation: %v", err)
		}
		if res, err = s.Run(); err != nil {
			fail("simulation: %v", err)
		}
	} else {
		var err error
		res, err = p.RunScenarioWith(jobs, sysNodes, mc, kind, func(cfg *core.Config) {
			if tl != nil {
				cfg.Observer = tl
			}
			if pmode != core.PressureGlobal {
				cfg.Pressure = pmode
				cfg.Domains = *domains
			}
			cfg.WindowStatsOut = &ws
			cfg.Telemetry = rec
		})
		if err != nil {
			fail("simulation: %v", err)
		}
	}

	if rec != nil {
		if *parallel {
			// One run-level window_stats event closes the log so dmpobs can
			// report the executor's parallelism counters.
			rec.WindowStats(ws.Windows, ws.Events, ws.Multi, ws.Independent)
		}
		// Close before reporting: it flushes the JSONL stream and surfaces
		// the first write error of the whole run.
		events, samples := rec.TotalEvents(), rec.Series().Len()
		if err := rec.Close(); err != nil {
			fail("telemetry: %v", err)
		}
		if *telPath != "" {
			fmt.Printf("telemetry log:          %s (%d events, %d samples)\n", *telPath, events, samples)
		}
		if prom != nil {
			f, err := os.Create(*promPath)
			if err != nil {
				fail("prom: %v", err)
			}
			if err := prom.WriteText(f); err != nil {
				f.Close()
				fail("prom: %v", err)
			}
			if err := f.Close(); err != nil {
				fail("prom: %v", err)
			}
			fmt.Printf("prometheus aggregates:  %s\n", *promPath)
		}
	}

	if *dumpConf != "" {
		cfg := p.ConfigFor(sysNodes, mc, kind)
		f, err := os.Create(*dumpConf)
		if err != nil {
			fail("%v", err)
		}
		if err := slurmconf.WriteConfig(f, cfg); err != nil {
			f.Close()
			fail("dump-conf: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("dump-conf: %v", err)
		}
		fmt.Printf("configuration:          %s\n", *dumpConf)
	}

	if *jobsCSV != "" {
		f, err := os.Create(*jobsCSV)
		if err != nil {
			fail("%v", err)
		}
		if err := res.WriteJobsCSV(f); err != nil {
			f.Close()
			fail("jobs csv: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("jobs csv: %v", err)
		}
		fmt.Printf("per-job results:        %s\n", *jobsCSV)
	}

	if tl != nil {
		f, err := os.Create(*timeline)
		if err != nil {
			fail("%v", err)
		}
		if err := tl.WriteCSV(f); err != nil {
			f.Close()
			fail("timeline: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("timeline: %v", err)
		}
		fmt.Printf("timeline:               %s (%d samples, peak queue %d)\n",
			*timeline, len(tl.Samples), tl.PeakQueued())
	}
	if res.Infeasible {
		fmt.Printf("scenario infeasible: job %d can never run under %s on this system\n",
			res.InfeasibleJob, kind)
		os.Exit(0)
	}

	totalMem := mc.TotalMemMB(sysNodes)
	fmt.Printf("policy:                 %s\n", res.Policy)
	fmt.Printf("system:                 %d nodes, %.1f GB total (%d%%)\n",
		sysNodes, float64(totalMem)/1024, *memPct)
	fmt.Printf("jobs:                   %d submitted, %d completed, %d timed out, %d abandoned\n",
		len(res.Records), res.Completed, res.TimedOut, res.Abandoned)
	fmt.Printf("OOM kills:              %d\n", res.OOMKills)
	fmt.Printf("peak queue depth:       %d\n", res.PeakQueue)
	fmt.Printf("makespan:               %.0f s\n", res.Makespan)
	if pmode == core.PressureDomains {
		fmt.Printf("pressure model:         domains\n")
	}
	if *parallel {
		fmt.Printf("event windows:          %d windows, %d events, %d multi-event, %d independent\n",
			ws.Windows, ws.Events, ws.Multi, ws.Independent)
	}
	fmt.Printf("throughput:             %.6f jobs/s\n", res.Throughput())
	fmt.Printf("throughput per dollar:  %.3e jobs/s/$\n",
		metrics.ThroughputPerDollar(res.Throughput(), sysNodes, totalMem))
	fmt.Printf("mean stretch:           %.3f (1.0 = contention-free)\n", res.MeanStretch())
	fmt.Printf("node utilisation:       %.1f%%\n", res.NodeUtilisation()*100)
	fmt.Printf("memory allocated:       %.1f%% of capacity\n", res.AllocationUtilisation()*100)
	fmt.Printf("memory actually used:   %.1f%% of capacity\n", res.MemoryUtilisation()*100)

	if rts := res.ResponseTimes(); len(rts) > 0 {
		e, err := metrics.NewECDF(rts)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("response time (s):      p25=%.0f p50=%.0f p75=%.0f p90=%.0f max=%.0f\n",
			e.Quantile(0.25), e.Median(), e.Quantile(0.75), e.Quantile(0.9), e.Max())
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dmpsim: "+format+"\n", args...)
	os.Exit(1)
}
