// Command dmplint runs dismem's static-analysis suite (internal/analysis)
// over the module: detclock, maporder, nilsafe-emit, hotpath-alloc,
// domainmerge, cowalias, guardedby, atomiconly, ctxflow, and hotpath-reach
// enforce the determinism, hot-path, pressure-domain, copy-on-write, and
// concurrency-discipline invariants the runtime differential, golden-digest,
// and -race tests can only detect after the fact.
//
// All targeted packages are loaded into one analysis module before any
// analyzer runs: the interprocedural checks (guardedby, ctxflow,
// hotpath-reach, atomiconly) need the whole call graph and module-wide fact
// indexes, so linting packages one by one would silently weaken them.
//
// Usage:
//
//	dmplint ./...             lint packages (human-readable, exit 1 on findings)
//	dmplint -json -out f.json ./...   also write findings as JSON (CI artifact)
//	dmplint -sarif -sarif-out f.sarif ./...  write findings as SARIF 2.1.0 for
//	                          code-scanning upload
//	dmplint -selftest         run every analyzer over its bundled fixtures and
//	                          fail unless each produces diagnostics — guards
//	                          against the linter silently skipping testdata
//
// Suppress a finding with a trailing or preceding comment:
//
//	//dmplint:ignore <analyzer> <reason>
//
// The reason is mandatory and a directive that suppresses nothing is itself
// reported, so the allowlist cannot rot silently.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"dismem/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code:
// 0 clean, 1 findings, 2 operational error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dmplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut   = fs.Bool("json", false, "emit findings as a JSON array")
		outPath   = fs.String("out", "", "write JSON findings to this file instead of stdout (implies -json)")
		sarifOut  = fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
		sarifPath = fs.String("sarif-out", "", "write SARIF findings to this file instead of stdout (implies -sarif)")
		chdir     = fs.String("C", "", "resolve the module and patterns in this directory")
		selftest  = fs.Bool("selftest", false, "run analyzers over their bundled fixtures; fail if any analyzer finds nothing")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	modPath, modDir, err := goListModule(*chdir)
	if err != nil {
		fmt.Fprintf(stderr, "dmplint: %v\n", err)
		return 2
	}

	if *selftest {
		return runSelfTest(modDir, stderr)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goListPackages(*chdir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "dmplint: %v\n", err)
		return 2
	}

	loader := analysis.NewLoader(modPath, modDir)
	pkgs := make([]*analysis.Package, 0, len(targets))
	for _, tgt := range targets {
		pkg, err := loader.LoadDir(tgt.importPath, tgt.dir)
		if err != nil {
			fmt.Fprintf(stderr, "dmplint: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	diags := analysis.RunModule(analysis.NewModule(pkgs), analysis.All())

	for _, d := range diags {
		fmt.Fprintf(stderr, "%s\n", humanize(d, modDir))
	}
	if *jsonOut || *outPath != "" {
		if err := writeJSON(diags, *outPath, stdout); err != nil {
			fmt.Fprintf(stderr, "dmplint: %v\n", err)
			return 2
		}
	}
	if *sarifOut || *sarifPath != "" {
		if err := writeSARIF(diags, modDir, *sarifPath, stdout); err != nil {
			fmt.Fprintf(stderr, "dmplint: %v\n", err)
			return 2
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "dmplint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// humanize renders one diagnostic with a module-relative path.
func humanize(d analysis.Diagnostic, modDir string) string {
	file := d.File
	if rel, err := filepath.Rel(modDir, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	return fmt.Sprintf("%s:%d:%d: %s (%s)", file, d.Line, d.Col, d.Message, d.Analyzer)
}

// writeJSON marshals the findings (never null: an empty run is "[]") to the
// given file or, with no file, to stdout.
func writeJSON(diags []analysis.Diagnostic, path string, stdout io.Writer) error {
	if diags == nil {
		diags = []analysis.Diagnostic{}
	}
	data, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// selfTestFixtures maps each analyzer to its bundled analysistest fixture
// package (under internal/analysis/testdata/src).
var selfTestFixtures = map[string]string{
	"detclock":      "detclock",
	"maporder":      "maporder",
	"nilsafe-emit":  "nilsafe",
	"hotpath-alloc": "hotpath",
	"domainmerge":   "domainmerge",
	"cowalias":      "cowalias",
	"guardedby":     "guardedby",
	"atomiconly":    "atomiconly",
	"ctxflow":       "ctxflow",
	"hotpath-reach": "hotreach",
}

// runSelfTest loads every analyzer's fixture package and fails unless the
// analyzer produces at least one diagnostic there. A zero-finding analyzer
// on a fixture full of seeded violations means the suite went blind — the
// exact failure mode this guard exists for. Loading also type-checks the
// fixtures, so a fixture that stopped compiling fails too.
func runSelfTest(modDir string, stderr io.Writer) int {
	fixtureDir := filepath.Join(modDir, "internal", "analysis", "testdata", "src")
	failed := false
	for _, a := range analysis.All() {
		fixture, ok := selfTestFixtures[a.Name]
		if !ok {
			fmt.Fprintf(stderr, "dmplint: selftest: analyzer %s has no fixture registered\n", a.Name)
			failed = true
			continue
		}
		unfiltered := *a
		unfiltered.PathFilter = nil
		loader := analysis.NewLoader("fixture", fixtureDir)
		pkg, err := loader.Load("fixture/" + fixture)
		if err != nil {
			fmt.Fprintf(stderr, "dmplint: selftest: %v\n", err)
			failed = true
			continue
		}
		diags := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{&unfiltered})
		real := 0
		for _, d := range diags {
			if d.Analyzer == a.Name {
				real++
			}
		}
		if real == 0 {
			fmt.Fprintf(stderr, "dmplint: selftest: analyzer %s found nothing in its fixture %s — the check went blind\n",
				a.Name, fixture)
			failed = true
			continue
		}
		fmt.Fprintf(stderr, "dmplint: selftest: %s ok (%d diagnostics in fixture)\n", a.Name, real)
	}
	if failed {
		return 1
	}
	return 0
}

// target is one package to lint.
type target struct {
	importPath string
	dir        string
}

// goListModule resolves the main module's path and directory.
func goListModule(dir string) (path, moduleDir string, err error) {
	out, err := goList(dir, "-m", "-f", "{{.Path}}\t{{.Dir}}")
	if err != nil {
		return "", "", err
	}
	lines := nonEmptyLines(out)
	if len(lines) != 1 {
		return "", "", fmt.Errorf("go list -m: expected one module, got %d", len(lines))
	}
	parts := strings.SplitN(lines[0], "\t", 2)
	if len(parts) != 2 {
		return "", "", fmt.Errorf("go list -m: unparseable output %q", lines[0])
	}
	return parts[0], parts[1], nil
}

// goListPackages expands the patterns into lintable packages.
func goListPackages(dir string, patterns []string) ([]target, error) {
	args := append([]string{"-f", "{{.ImportPath}}\t{{.Dir}}"}, patterns...)
	out, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	var targets []target
	for _, line := range nonEmptyLines(out) {
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("go list: unparseable output %q", line)
		}
		targets = append(targets, target{importPath: parts[0], dir: parts[1]})
	}
	return targets, nil
}

// goList invokes the go tool's list subcommand in dir.
func goList(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errBuf.String())
	}
	return out.String(), nil
}

func nonEmptyLines(s string) []string {
	var lines []string
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			lines = append(lines, l)
		}
	}
	return lines
}
