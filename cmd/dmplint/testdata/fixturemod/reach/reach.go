// Package reach seeds one hotpath-reach violation: an annotated hot
// function delegating to a helper that fails the allocation checks.
package reach

import "fmt"

// Step is the annotated hot function; its own body is clean.
//
//dmp:hotpath
func Step(id int) string {
	return describe(id) // seeded hotpath-reach violation (line 11)
}

func describe(id int) string {
	return fmt.Sprintf("step-%d", id)
}
