// Package counters seeds one atomiconly violation: a counter accessed
// through sync/atomic in one place and with a plain store in another.
package counters

import "sync/atomic"

var ops int64

// Bump counts one operation.
func Bump() { atomic.AddInt64(&ops, 1) }

// Reset zeroes the counter behind the atomics' back.
func Reset() { ops = 0 } // seeded atomiconly violation (line 13)
