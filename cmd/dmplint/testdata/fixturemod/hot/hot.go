// Package hot seeds one hotpath-alloc violation: fmt.Sprintf inside an
// annotated function.
package hot

import "fmt"

// Label allocates on every call despite the hot-path contract.
//
//dmp:hotpath
func Label(id int) string {
	return fmt.Sprintf("job-%d", id) // seeded hotpath-alloc violation (line 11)
}
