// Package telemetry seeds one nilsafe-emit violation: an exported Recorder
// method without the nil-receiver guard.
package telemetry

// Recorder mimics the real telemetry recorder's shape.
type Recorder struct{ n int }

// Emit is missing the `if r == nil { return }` guard. (line 10)
func (r *Recorder) Emit(k string) {
	r.n++
}
