// Package server seeds one ctxflow violation: a handler that mints a fresh
// background context instead of threading the request context. The types
// are name-matched stand-ins, mirroring the analyzer's handler detection.
package server

import "context"

// ResponseWriter stands in for net/http's interface of the same name.
type ResponseWriter interface{ Write([]byte) (int, error) }

// Request stands in for net/http's type of the same name.
type Request struct{}

// Handle drops the request context on the floor.
func Handle(w ResponseWriter, r *Request) {
	work(context.Background()) // seeded ctxflow violation (line 16)
}

func work(ctx context.Context) { <-ctx.Done() }
