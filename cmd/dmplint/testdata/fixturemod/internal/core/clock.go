// Package core seeds one detclock violation: internal/core is a guarded
// path segment, so the wall-clock read below must be diagnosed.
package core

import "time"

// Stamp leaks wall-clock time into what poses as simulator state.
func Stamp() int64 {
	return time.Now().UnixNano() // seeded detclock violation (line 9)
}
