// Package agg seeds one maporder violation: a float accumulated in map
// iteration order.
package agg

// Sum is bit-level irreproducible across runs.
func Sum(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // seeded maporder violation (line 9)
	}
	return s
}
