// Package guarded seeds one guardedby violation: a bare read of a
// mutex-guarded field.
package guarded

import "sync"

// Box pairs a mutex with the field it guards.
type Box struct {
	mu sync.Mutex
	n  int //dmp:guardedby(mu)
}

// Peek reads the guarded field without taking the lock.
func (b *Box) Peek() int {
	return b.n // seeded guardedby violation (line 15)
}

// Bump shows the disciplined access so the annotation is exercised both ways.
func (b *Box) Bump() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}
