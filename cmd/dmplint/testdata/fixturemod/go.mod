module dmplintfix

go 1.22
