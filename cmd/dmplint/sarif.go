package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dismem/internal/analysis"
)

// This file renders dmplint findings as a minimal SARIF 2.1.0 log — the
// schema GitHub code scanning ingests — so CI can upload the lint run as a
// scanning artifact instead of a bare JSON blob. Only the required subset is
// emitted: one run, one tool driver with a rule per analyzer, and one result
// per diagnostic with a physical location. File URIs are module-relative so
// the log is stable across checkouts.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the findings as SARIF 2.1.0 to the given file or, with
// no file, to stdout.
func writeSARIF(diags []analysis.Diagnostic, modDir, path string, stdout io.Writer) error {
	rules := make([]sarifRule, 0, len(analysis.All())+1)
	for _, a := range analysis.All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{ID: "dmplint", ShortDescription: sarifText{
		Text: "malformed or stale //dmplint:ignore directives"}})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.File
		if rel, err := filepath.Rel(modDir, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		uri = filepath.ToSlash(uri)
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "dmplint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
