package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dismem/internal/analysis"
)

// TestEndToEndFixtureModule runs the full dmplint pipeline — go list, module
// resolution, loading, the full analyzer suite, JSON output — over a nested
// fixture module carrying exactly one seeded violation per position-pinned
// analyzer, and asserts each diagnostic lands on the seeded line. (domainmerge
// and cowalias target repo-internal APIs that have richer fixture coverage in
// internal/analysis; the -selftest guard below keeps them from going blind.)
func TestEndToEndFixtureModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "testdata/fixturemod", "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run exited %d, want 1 (findings)\nstderr:\n%s", code, stderr.String())
	}

	var diags []analysis.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("JSON output unparseable: %v\n%s", err, stdout.String())
	}

	expected := []struct {
		analyzer   string
		fileSuffix string
		line       int
	}{
		{"detclock", "internal/core/clock.go", 9},
		{"hotpath-alloc", "hot/hot.go", 11},
		{"maporder", "agg/agg.go", 9},
		{"nilsafe-emit", "internal/telemetry/recorder.go", 9},
		{"guardedby", "guarded/guarded.go", 15},
		{"atomiconly", "counters/counters.go", 13},
		{"ctxflow", "internal/server/srv.go", 16},
		{"hotpath-reach", "reach/reach.go", 11},
	}
	if len(diags) != len(expected) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(expected), stderr.String())
	}
	for _, want := range expected {
		found := false
		for _, d := range diags {
			if d.Analyzer == want.analyzer && strings.HasSuffix(d.File, want.fileSuffix) && d.Line == want.line {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s diagnostic at %s:%d; got:\n%s",
				want.analyzer, want.fileSuffix, want.line, stderr.String())
		}
	}

	// The human-readable report must carry every finding too (CI log view).
	for _, want := range expected {
		if !strings.Contains(stderr.String(), "("+want.analyzer+")") {
			t.Errorf("stderr report missing a %s finding:\n%s", want.analyzer, stderr.String())
		}
	}
}

// TestSARIFOutput pins the -sarif rendering over the same fixture module:
// valid SARIF 2.1.0 shape, one rule per analyzer plus the directive
// pseudo-rule, and module-relative slash-separated URIs on every result.
func TestSARIFOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "testdata/fixturemod", "-sarif", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run exited %d, want 1 (findings)\nstderr:\n%s", code, stderr.String())
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output unparseable: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "dmplint" {
		t.Errorf("driver name = %q, want dmplint", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, a := range analysis.All() {
		if !ruleIDs[a.Name] {
			t.Errorf("rules missing analyzer %s", a.Name)
		}
	}
	if !ruleIDs["dmplint"] {
		t.Error("rules missing the dmplint directive pseudo-rule")
	}
	if len(run.Results) != 8 {
		t.Fatalf("got %d results, want 8 (one per seeded violation)", len(run.Results))
	}
	for _, r := range run.Results {
		if r.Level != "error" {
			t.Errorf("%s: level = %q, want error", r.RuleID, r.Level)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("%s: got %d locations, want 1", r.RuleID, len(r.Locations))
		}
		uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if strings.HasPrefix(uri, "/") || strings.Contains(uri, "\\") {
			t.Errorf("%s: URI %q is not module-relative slash-separated", r.RuleID, uri)
		}
		if r.Locations[0].PhysicalLocation.Region.StartLine <= 0 {
			t.Errorf("%s: missing startLine", r.RuleID)
		}
	}
	if run.Results[0].RuleID == "" {
		t.Error("first result has no ruleId")
	}
}

// TestSelfTest pins the -selftest mode: every analyzer must find its seeded
// fixture violations, proving the suite has not gone blind.
func TestSelfTest(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", "../..", "-selftest"}, &stdout, &stderr); code != 0 {
		t.Fatalf("selftest exited %d:\n%s", code, stderr.String())
	}
	for _, a := range analysis.All() {
		if !strings.Contains(stderr.String(), a.Name+" ok") {
			t.Errorf("selftest output missing %q:\n%s", a.Name+" ok", stderr.String())
		}
	}
}

// TestRepoClean lints the repository itself: the tree must stay free of
// findings, so a violation introduced anywhere fails `go test ./...` as well
// as the dedicated CI step.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint in -short mode")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("dmplint over the repo exited %d:\n%s", code, stderr.String())
	}
}
