package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dismem/internal/analysis"
)

// TestEndToEndFixtureModule runs the full dmplint pipeline — go list, module
// resolution, loading, all four analyzers, JSON output — over a nested
// fixture module carrying exactly one seeded violation per analyzer, and
// asserts each diagnostic lands on the seeded line.
func TestEndToEndFixtureModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "testdata/fixturemod", "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run exited %d, want 1 (findings)\nstderr:\n%s", code, stderr.String())
	}

	var diags []analysis.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("JSON output unparseable: %v\n%s", err, stdout.String())
	}

	expected := []struct {
		analyzer   string
		fileSuffix string
		line       int
	}{
		{"detclock", "internal/core/clock.go", 9},
		{"hotpath-alloc", "hot/hot.go", 11},
		{"maporder", "agg/agg.go", 9},
		{"nilsafe-emit", "internal/telemetry/recorder.go", 9},
	}
	if len(diags) != len(expected) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(expected), stderr.String())
	}
	for _, want := range expected {
		found := false
		for _, d := range diags {
			if d.Analyzer == want.analyzer && strings.HasSuffix(d.File, want.fileSuffix) && d.Line == want.line {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s diagnostic at %s:%d; got:\n%s",
				want.analyzer, want.fileSuffix, want.line, stderr.String())
		}
	}

	// The human-readable report must carry every finding too (CI log view).
	for _, want := range expected {
		if !strings.Contains(stderr.String(), "("+want.analyzer+")") {
			t.Errorf("stderr report missing a %s finding:\n%s", want.analyzer, stderr.String())
		}
	}
}

// TestSelfTest pins the -selftest mode: every analyzer must find its seeded
// fixture violations, proving the suite has not gone blind.
func TestSelfTest(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", "../..", "-selftest"}, &stdout, &stderr); code != 0 {
		t.Fatalf("selftest exited %d:\n%s", code, stderr.String())
	}
	for _, a := range analysis.All() {
		if !strings.Contains(stderr.String(), a.Name+" ok") {
			t.Errorf("selftest output missing %q:\n%s", a.Name+" ok", stderr.String())
		}
	}
}

// TestRepoClean lints the repository itself: the tree must stay free of
// findings, so a violation introduced anywhere fails `go test ./...` as well
// as the dedicated CI step.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint in -short mode")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("dmplint over the repo exited %d:\n%s", code, stderr.String())
	}
}
