// Command dmptrace runs the paper's Figure 3 trace-generation pipeline and
// writes the resulting job trace in Standard Workload Format (and
// optionally as a lossless dismem bundle including the usage traces), plus
// a characterisation summary on stderr.
//
// Usage:
//
//	dmptrace -nodes 1024 -days 7 -load 0.8 -large-jobs 0.5 -overest 0.6 \
//	    -model cirne -o trace.swf -bundle trace.bundle
package main

import (
	"flag"
	"fmt"
	"os"

	"dismem/internal/bundle"
	"dismem/internal/tracegen"
	"dismem/internal/workload"
)

func main() {
	var (
		nodes      = flag.Int("nodes", 1024, "target system size")
		days       = flag.Float64("days", 7, "trace span in days")
		load       = flag.Float64("load", 0.8, "target CPU utilisation")
		largeF     = flag.Float64("large-jobs", 0.5, "fraction of large-memory jobs")
		overest    = flag.Float64("overest", 0, "request overestimation factor")
		model      = flag.String("model", "cirne", "workload model: cirne or lublin")
		out        = flag.String("o", "-", "output SWF path (- = stdout)")
		bundlePath = flag.String("bundle", "", "also write a lossless dismem bundle (jobs + usage traces) here")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	res, err := tracegen.Run(tracegen.Params{
		SystemNodes:    *nodes,
		Load:           *load,
		Days:           *days,
		LargeFrac:      *largeF,
		Overestimation: *overest,
		Model:          *model,
		Seed:           *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmptrace: %v\n", err)
		os.Exit(1)
	}

	if *bundlePath != "" {
		f, err := os.Create(*bundlePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmptrace: %v\n", err)
			os.Exit(1)
		}
		if err := bundle.Write(f, res.Jobs); err != nil {
			fmt.Fprintf(os.Stderr, "dmptrace: bundle: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dmptrace: bundle: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dmptrace: wrote bundle %s\n", *bundlePath)
	}

	w := os.Stdout
	var f *os.File
	if *out != "-" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmptrace: %v\n", err)
			os.Exit(1)
		}
		w = f
	}
	if err := res.WriteSWF(w); err != nil {
		fmt.Fprintf(os.Stderr, "dmptrace: write: %v\n", err)
		os.Exit(1)
	}
	// Close errors surface writes the kernel deferred (full disk, quota):
	// without this check a truncated trace could exit 0.
	if f != nil {
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dmptrace: write %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "dmptrace: %d jobs, %.1f%% large-memory, span %.1f days\n",
		len(res.Jobs), res.LargeJobFraction()*100, *days)
	if c, err := workload.Characterize(res.Jobs, 64*1024); err != nil {
		fmt.Fprintf(os.Stderr, "dmptrace: characterize: %v\n", err)
	} else {
		fmt.Fprint(os.Stderr, c)
	}
}
