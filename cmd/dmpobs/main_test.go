package main

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dismem/internal/telemetry"
)

// fixtureLog drives a Recorder through a tiny run and decodes its JSONL
// output, so the summary is tested against the same wire format dmpsim
// writes.
func fixtureLog(t *testing.T) *telemetry.Log {
	t.Helper()
	var buf bytes.Buffer
	rec := telemetry.New(telemetry.Options{Sink: telemetry.NewJSONL(&buf)})
	rec.SetNow(0)
	rec.JobSubmit(1, false)
	rec.JobSubmit(2, false)
	rec.JobSubmit(3, false)
	rec.Sample(0, 4096, 0, 2, 0, 0)
	rec.SetNow(10)
	rec.JobStart(1, 2, 1024, 512)
	rec.LeaseGrant(1, 3, 7, 512)
	rec.BackfillHole(2, math.Inf(1))
	rec.Sample(300, 2048, 512, 1, 2, 1)
	rec.SetNow(400)
	rec.LeaseAdjust(1, 3, 256, 128)
	rec.LeaseGrant(1, 3, 9, 128)
	rec.PoolCheck(0, 4096) // drains the pool: crosses every default watermark
	rec.SetNow(500)
	rec.LeaseAdjust(1, 3, -64, -64)
	// Legacy pre-split log line: kills used to be job_end. The summary must
	// fold it into the kill tally, not the terminal outcomes.
	rec.JobEnd(2, "oom-killed", 0)
	rec.JobSubmit(2, true)
	// Current schema: the kill is an attempt end, the abandonment the single
	// final job_end — the pair the old double-emit produced as two job_ends.
	rec.JobAttemptEnd(3, "oom-killed", 1)
	rec.JobEnd(3, "abandoned", 1)
	rec.SetNow(900)
	rec.LeaseRevoke(1, 3, 7, 512)
	rec.LeaseRevoke(1, 3, 9, 64)
	rec.JobEnd(1, "completed", 0)
	rec.BackfillPlace(2)
	rec.Sample(900, 4096, 0, 0, 0, 0)
	// Two what-if branches forked off this run: a no-op (inherits the prefix,
	// touches nothing) and a repack (pays a node copy and three shard thaws).
	rec.Branch("noop", 1200, 0, 0)
	rec.Branch("repack", 1200, 1, 3)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := telemetry.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func TestSummarize(t *testing.T) {
	var out strings.Builder
	if err := summarize(&out, "fixture", fixtureLog(t), 60, 4); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"fixture: ",
		"3 samples",
		"events by kind",
		"lease_grant            2",
		"job_attempt_end        1",
		"submitted               3 (plus 1 restarts)",
		"completed               1",
		"abandoned               1",
		"oom kills               2 (attempts, not terminal outcomes)",
		"backfilled              1 (1 reservation holes)",
		"what-if branches",
		"repack                1200 prefix events inherited, 1 node copies, 3 shard thaws",
		"total: 2 branches shared 2400 prefix events; CoW paid 1 node copies, 3 shard thaws",
		"lease flow",
		"granted          0.6 GB in 2 leases from 2 lender nodes",
		"pool watermark crossings",
		"≤50%",
		"≤0%",
		"pool occupancy (GB)",
		"scheduler load",
		"queue depth",
		"top lenders (GB lent out)",
		"node 7",
		"top borrowers (GB borrowed)",
		"node 3",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestSummarizeEmptyLog(t *testing.T) {
	var out strings.Builder
	if err := summarize(&out, "empty", &telemetry.Log{}, 60, 4); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "0 events, 0 samples") {
		t.Fatalf("empty log header wrong:\n%s", s)
	}
	// No samples, no grants: the timeline and bar sections are skipped
	// rather than rendered empty.
	if strings.Contains(s, "pool occupancy") || strings.Contains(s, "top lenders") {
		t.Fatalf("empty log rendered data sections:\n%s", s)
	}
}

func TestTopBarsOrderAndCap(t *testing.T) {
	bars := topBars(map[int]int64{4: 1024, 2: 2048, 9: 2048, 1: 512}, 3)
	if len(bars) != 3 {
		t.Fatalf("got %d bars, want 3", len(bars))
	}
	// Sorted by volume, ties by node id; the smallest entry dropped.
	if bars[0].Label != "node 2" || bars[1].Label != "node 9" || bars[2].Label != "node 4" {
		t.Fatalf("bar order wrong: %v", bars)
	}
	if bars[0].Value != 2.0 {
		t.Fatalf("GB conversion wrong: %v", bars[0].Value)
	}
}
