// Command dmpobs summarizes a telemetry event log written by dmpsim or
// dmpexp (-telemetry): event counts, job outcomes, what-if branch economics
// (prefix events shared, CoW copies paid), lease flow, watermark crossings,
// pool statistics, and terminal timelines for pool occupancy, queue depth,
// and per-node borrow/lend volume.
//
// Usage:
//
//	dmpobs run.jsonl
//	dmpobs -prom aggregates.txt run.jsonl
//	dmpobs -          # read the log from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"dismem/internal/telemetry"
	"dismem/internal/textplot"
)

func main() {
	var (
		promPath = flag.String("prom", "", "also write Prometheus text-format aggregates of the log here")
		width    = flag.Int("width", 72, "timeline width in characters")
		top      = flag.Int("top", 8, "rows in the per-node borrow/lend charts")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dmpobs [-prom out.txt] [-width N] [-top N] <run.jsonl | ->")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	name := flag.Arg(0)
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		in = f
	} else {
		name = "(stdin)"
	}

	log, err := telemetry.ReadLog(in)
	if err != nil {
		fail("%v", err)
	}
	if err := summarize(os.Stdout, name, log, *width, *top); err != nil {
		fail("%v", err)
	}

	if *promPath != "" {
		f, err := os.Create(*promPath)
		if err != nil {
			fail("%v", err)
		}
		if err := telemetry.AggregateFromLog(log).WriteText(f); err != nil {
			f.Close()
			fail("prom: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("prom: %v", err)
		}
		fmt.Printf("\nwrote Prometheus aggregates to %s\n", *promPath)
	}
}

// summarize renders the whole observability report for one decoded log.
func summarize(w io.Writer, name string, log *telemetry.Log, width, top int) error {
	counts := log.Counts()
	span := 0.0
	if n := len(log.Events); n > 0 {
		span = log.Events[n-1].T
	}
	if n := log.Series.Len(); n > 0 && log.Series.T[n-1] > span {
		span = log.Series.T[n-1]
	}
	fmt.Fprintf(w, "%s: %d events, %d samples, %.0f simulated seconds\n\n",
		name, len(log.Events), log.Series.Len(), span)

	fmt.Fprintln(w, "events by kind")
	for k := telemetry.Kind(0); k < telemetry.KindCount; k++ {
		fmt.Fprintf(w, "  %-15s %8d\n", k.String(), counts[k])
	}

	// Final job outcomes come from the JobEnd detail strings — one per job,
	// now that OOM kills are job_attempt_end events. Pre-split logs carried
	// kills as job_end "oom-killed"; those are folded into the kill tally,
	// never the outcomes, so a killed-then-abandoned job counts once either
	// way. Resubmissions are JobSubmit events flagged in Aux.
	outcomes := map[string]int{}
	oomKills := 0
	resubmits := 0
	var grantMB, revokeMB, growMB, shrinkMB int64
	var grows, shrinks int
	lentBy := map[int]int64{}     // lender node -> MB granted from it
	borrowedBy := map[int]int64{} // compute node -> MB borrowed for it
	for i := range log.Events {
		e := &log.Events[i]
		switch e.Kind {
		case telemetry.KindJobSubmit:
			if e.Aux == 1 {
				resubmits++
			}
		case telemetry.KindJobEnd:
			if e.Detail == "oom-killed" {
				oomKills++ // legacy log: kills were job_end before the split
			} else {
				outcomes[e.Detail]++
			}
		case telemetry.KindJobAttemptEnd:
			if e.Detail == "oom-killed" {
				oomKills++
			}
		case telemetry.KindLeaseGrant:
			grantMB += e.MB
			lentBy[e.Lender] += e.MB
			borrowedBy[e.Node] += e.MB
		case telemetry.KindLeaseRevoke:
			revokeMB += e.MB
		case telemetry.KindLeaseAdjust:
			if e.MB >= 0 {
				grows++
				growMB += e.MB
			} else {
				shrinks++
				shrinkMB += -e.MB
			}
		}
	}

	fmt.Fprintln(w, "\njobs")
	fmt.Fprintf(w, "  submitted        %8d (plus %d restarts)\n",
		int(counts[telemetry.KindJobSubmit])-resubmits, resubmits)
	for _, oc := range []string{"completed", "timed-out", "abandoned"} {
		if n, ok := outcomes[oc]; ok {
			fmt.Fprintf(w, "  %-15s  %8d\n", oc, n)
		}
	}
	if oomKills > 0 {
		fmt.Fprintf(w, "  oom kills        %8d (attempts, not terminal outcomes)\n", oomKills)
	}
	if counts[telemetry.KindBackfillPlace] > 0 || counts[telemetry.KindBackfillHole] > 0 {
		fmt.Fprintf(w, "  backfilled       %8d (%d reservation holes)\n",
			counts[telemetry.KindBackfillPlace], counts[telemetry.KindBackfillHole])
	}

	if counts[telemetry.KindWindowStats] > 0 {
		// The run-level executor counters: the last window_stats event wins
		// (there is one per run; concatenated logs show the final run's).
		for i := len(log.Events) - 1; i >= 0; i-- {
			e := &log.Events[i]
			if e.Kind != telemetry.KindWindowStats {
				continue
			}
			fmt.Fprintln(w, "\nwindow executor")
			fmt.Fprintf(w, "  windows   %10d popped, %d events fired\n", e.MB, e.Aux)
			fmt.Fprintf(w, "  multi     %10d multi-event windows, %d proven independent\n", e.Node, e.Lender)
			break
		}
	}

	if counts[telemetry.KindBranch] > 0 {
		// Branch events are emitted on the base run's stream, one per
		// what-if variant: Detail names the variant, Aux is the prefix event
		// count the branch inherited instead of re-simulating, and MB/Node
		// carry the branch's CoW materialisation counters.
		fmt.Fprintln(w, "\nwhat-if branches")
		var branches int
		var savedEvents, nodeCopies, shardThaws int64
		for i := range log.Events {
			e := &log.Events[i]
			if e.Kind != telemetry.KindBranch {
				continue
			}
			branches++
			savedEvents += e.Aux
			nodeCopies += e.MB
			shardThaws += int64(e.Node)
			fmt.Fprintf(w, "  %-15s %10d prefix events inherited, %d node copies, %d shard thaws\n",
				e.Detail, e.Aux, e.MB, e.Node)
		}
		fmt.Fprintf(w, "  total: %d branches shared %d prefix events; CoW paid %d node copies, %d shard thaws\n",
			branches, savedEvents, nodeCopies, shardThaws)
	}

	fmt.Fprintln(w, "\nlease flow")
	fmt.Fprintf(w, "  granted   %10.1f GB in %d leases from %d lender nodes\n",
		gb(grantMB), counts[telemetry.KindLeaseGrant], len(lentBy))
	fmt.Fprintf(w, "  revoked   %10.1f GB at teardown\n", gb(revokeMB))
	fmt.Fprintf(w, "  resizes   %10d grows (+%.1f GB), %d shrinks (-%.1f GB)\n",
		grows, gb(growMB), shrinks, gb(shrinkMB))

	if counts[telemetry.KindPoolWatermark] > 0 {
		fmt.Fprintln(w, "\npool watermark crossings")
		const maxMarks = 12
		shown := 0
		for i := range log.Events {
			e := &log.Events[i]
			if e.Kind != telemetry.KindPoolWatermark {
				continue
			}
			if shown == maxMarks {
				fmt.Fprintf(w, "  … and %d more\n", counts[telemetry.KindPoolWatermark]-maxMarks)
				break
			}
			shown++
			fmt.Fprintf(w, "  t=%-10.0f free pool fell to ≤%d%% (%.1f GB free)\n", e.T, e.Aux, gb(e.MB))
		}
	}

	if s := &log.Series; s.Len() > 0 {
		last := s.At(s.Len() - 1)
		fmt.Fprintln(w, "\npool samples")
		fmt.Fprintf(w, "  min free  %10.1f GB   peak lent %10.1f GB   peak queue %d\n",
			gb(s.MinFreeMB()), gb(s.PeakLentMB()), s.PeakQueue())
		fmt.Fprintf(w, "  final     %10.1f GB free, %.1f GB lent, %d queued, %d running\n",
			gb(last.FreeMB), gb(last.LentMB), last.Queue, last.Running)

		fmt.Fprintln(w)
		fmt.Fprint(w, textplot.TimeSeries("pool occupancy (GB)", s.T, []textplot.Series{
			{Name: "free", Values: toF64(s.FreeMB, 1.0/1024)},
			{Name: "lent", Values: toF64(s.LentMB, 1.0/1024)},
		}, width, 12))
		fmt.Fprintln(w)
		fmt.Fprint(w, textplot.TimeSeries("scheduler load", s.T, []textplot.Series{
			{Name: "queue depth", Values: toF64i32(s.Queue)},
			{Name: "running jobs", Values: toF64i32(s.Running)},
			{Name: "busy nodes", Values: toF64i32(s.Busy)},
		}, width, 12))
	}

	if len(lentBy) > 0 {
		fmt.Fprintln(w)
		fmt.Fprint(w, textplot.BarChart("top lenders (GB lent out)", topBars(lentBy, top), width/2, "%.1f"))
		fmt.Fprintln(w)
		fmt.Fprint(w, textplot.BarChart("top borrowers (GB borrowed)", topBars(borrowedBy, top), width/2, "%.1f"))
	}
	return nil
}

// topBars converts a node→MB tally into the n largest bars in GB, ties
// broken by node id so the report is deterministic.
func topBars(m map[int]int64, n int) []textplot.Bar {
	type kv struct {
		node int
		mb   int64
	}
	all := make([]kv, 0, len(m))
	for node, mb := range m {
		all = append(all, kv{node, mb})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].mb != all[j].mb {
			return all[i].mb > all[j].mb
		}
		return all[i].node < all[j].node
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	bars := make([]textplot.Bar, len(all))
	for i, e := range all {
		bars[i] = textplot.Bar{Label: fmt.Sprintf("node %d", e.node), Value: gb(e.mb)}
	}
	return bars
}

func gb(mb int64) float64 { return float64(mb) / 1024 }

func toF64(v []int64, scale float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x) * scale
	}
	return out
}

func toF64i32(v []int32) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dmpobs: "+format+"\n", args...)
	os.Exit(1)
}
