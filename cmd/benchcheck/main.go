// Command benchcheck compares a `go test -bench` run against a recorded
// BENCH_<n>.json baseline and fails when any benchmark regressed beyond the
// tolerance. It is the CI bench-smoke gate: run the benchmarks and pipe the
// output through benchcheck.
//
// Run the benchmarks with -count=5 (or any N): benchcheck collects every
// sample per benchmark and compares the MEDIAN against the baseline, so one
// noisy scheduler hiccup on a shared runner cannot fake a regression — the
// failure mode that made BENCH_1→BENCH_2 report a phantom slowdown from
// single-shot timings.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkFig5$|BenchmarkHeadlines$' -benchtime 1x -count=5 . \
//	    | go run ./cmd/benchcheck -baseline BENCH_3.json
//
// With -compare, benchcheck diffs two recorded baselines instead of reading
// stdin — the cross-PR trajectory check (e.g. BENCH_3 vs BENCH_2):
//
//	go run ./cmd/benchcheck -baseline BENCH_2.json -compare BENCH_3.json
//
// With -speedup/-min-speedup, benchcheck instead gates a ratio between two
// benchmarks of the SAME run — the CI multi-core gate that requires the
// parallel executor to beat the serial one by a factor:
//
//	go test -run '^$' -bench 'BenchmarkScenario$/^grizzly-scale' -benchtime 1x -count=5 . \
//	    | go run ./cmd/benchcheck \
//	        -speedup 'BenchmarkScenario/grizzly-scale,BenchmarkScenario/grizzly-scale-parallel' \
//	        -min-speedup 3.0
//
// Flags:
//
//	-baseline path   recorded JSON baseline (required unless -speedup is set)
//	-compare path    second baseline to diff against -baseline (skips stdin)
//	-tolerance f     allowed fractional slowdown before failing (default 0.20)
//	-speedup a,b     benchmark pair: require median(a)/median(b) ≥ -min-speedup
//	-min-speedup f   required speedup factor for the -speedup pair (default 1.0)
//
// Benchmarks present in the input but absent from the baseline (or vice
// versa) are reported and skipped; only the intersection is compared.
// Exit status 1 on regression, on a missed speedup, or if no benchmark
// could be compared.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type baselineFile struct {
	Commit     string `json:"commit"`
	Benchmarks []struct {
		Name    string   `json:"name"`
		NsPerOp *float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// benchLine matches e.g. "BenchmarkFig5-4   5   493572471 ns/op   ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	baselinePath := flag.String("baseline", "", "recorded BENCH_<n>.json to compare against")
	comparePath := flag.String("compare", "", "second BENCH_<n>.json to diff against -baseline instead of stdin")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional slowdown before failing")
	speedupPair := flag.String("speedup", "", "comma-separated benchmark pair a,b: require median(a)/median(b) >= -min-speedup")
	minSpeedup := flag.Float64("min-speedup", 1.0, "required speedup factor for the -speedup pair")
	flag.Parse()
	if *baselinePath == "" && *speedupPair == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -baseline is required (or -speedup for a same-run ratio gate)")
		return 2
	}

	var base baselineFile
	want := map[string]float64{}
	if *baselinePath != "" {
		var err error
		base, want, err = loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			return 2
		}
	}

	var samples map[string][]float64
	var order []string
	var err error
	if *comparePath != "" {
		// Baseline-vs-baseline mode: the second file's recorded medians stand
		// in for the stdin samples, in the file's own benchmark order.
		cmp, _, err := loadBaseline(*comparePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			return 2
		}
		samples, order = baselineSamples(cmp)
	} else {
		samples, order, err = parseBench(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: reading stdin: %v\n", err)
			return 2
		}
	}

	if *speedupPair != "" {
		if code := checkSpeedup(samples, *speedupPair, *minSpeedup); code != 0 {
			return code
		}
		if *baselinePath == "" {
			return 0
		}
	}

	compared, regressed := 0, 0
	for _, name := range order {
		ref, ok := want[name]
		if !ok {
			fmt.Printf("skip  %-40s not in baseline %s\n", name, *baselinePath)
			continue
		}
		got := median(samples[name])
		compared++
		ratio := got / ref
		status := "ok   "
		if ratio > 1+*tolerance {
			status = "FAIL "
			regressed++
		}
		fmt.Printf("%s %-40s %14.0f ns/op (median of %d) vs %14.0f baseline (%+.1f%%)\n",
			status, name, got, len(samples[name]), ref, (ratio-1)*100)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark lines matched the baseline — nothing compared")
		return 1
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d of %d benchmarks regressed beyond %.0f%% vs %s (commit %s)\n",
			regressed, compared, *tolerance*100, *baselinePath, base.Commit)
		return 1
	}
	fmt.Printf("benchcheck: %d benchmarks within %.0f%% of %s (commit %s)\n",
		compared, *tolerance*100, *baselinePath, base.Commit)
	return 0
}

// checkSpeedup enforces the same-run ratio gate: pair is "slow,fast", and
// median(slow)/median(fast) must reach min. Returns the process exit code
// (0 on success) so realMain can pass it straight through.
func checkSpeedup(samples map[string][]float64, pair string, min float64) int {
	names := strings.Split(pair, ",")
	if len(names) != 2 || names[0] == "" || names[1] == "" {
		fmt.Fprintf(os.Stderr, "benchcheck: -speedup wants two comma-separated benchmark names, got %q\n", pair)
		return 2
	}
	slow, fast := names[0], names[1]
	for _, n := range names {
		if len(samples[n]) == 0 {
			fmt.Fprintf(os.Stderr, "benchcheck: -speedup benchmark %q not found in input\n", n)
			return 1
		}
	}
	ratio := median(samples[slow]) / median(samples[fast])
	if ratio < min {
		fmt.Fprintf(os.Stderr, "benchcheck: speedup %s over %s is %.2fx, want >= %.2fx\n",
			fast, slow, ratio, min)
		return 1
	}
	fmt.Printf("speedup %-40s %.2fx over %s (>= %.2fx required)\n", fast, ratio, slow, min)
	return 0
}

// loadBaseline reads a recorded BENCH_<n>.json and returns it plus a
// name → ns/op map of the benchmarks that carry a timing.
func loadBaseline(path string) (baselineFile, map[string]float64, error) {
	var base baselineFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return base, nil, err
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		return base, nil, fmt.Errorf("%s: %w", path, err)
	}
	want := make(map[string]float64)
	for _, b := range base.Benchmarks {
		if b.NsPerOp != nil {
			want[b.Name] = *b.NsPerOp
		}
	}
	return base, want, nil
}

// baselineSamples converts a recorded baseline into the same (samples, order)
// shape parseBench yields, so -compare reuses the whole reporting path: each
// recorded ns/op becomes a single-sample series whose median is itself.
func baselineSamples(base baselineFile) (map[string][]float64, []string) {
	samples := make(map[string][]float64, len(base.Benchmarks))
	var order []string
	for _, b := range base.Benchmarks {
		if b.NsPerOp == nil {
			continue
		}
		if _, seen := samples[b.Name]; !seen {
			order = append(order, b.Name)
		}
		samples[b.Name] = append(samples[b.Name], *b.NsPerOp)
	}
	return samples, order
}

// parseBench collects every ns/op sample per benchmark name (repeated lines
// from -count=N accumulate) and the order names first appeared, so the
// report is stable.
func parseBench(r io.Reader) (map[string][]float64, []string, error) {
	samples := make(map[string][]float64)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if _, seen := samples[m[1]]; !seen {
			order = append(order, m[1])
		}
		samples[m[1]] = append(samples[m[1]], v)
	}
	return samples, order, sc.Err()
}

// median returns the middle sample (mean of the two middles for even n).
// The input is copied, not reordered.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
