// Command benchcheck compares a `go test -bench` run against a recorded
// BENCH_<n>.json baseline and fails when any benchmark regressed beyond the
// tolerance. It is the CI bench-smoke gate: run the benchmarks once and
// pipe the output through benchcheck.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkFig5$|BenchmarkHeadlines$' -benchtime 1x . \
//	    | go run ./cmd/benchcheck -baseline BENCH_2.json
//
// Flags:
//
//	-baseline path   recorded JSON baseline (required)
//	-tolerance f     allowed fractional slowdown before failing (default 0.20)
//
// Benchmarks present in the input but absent from the baseline (or vice
// versa) are reported and skipped; only the intersection is compared.
// Exit status 1 on regression or if no benchmark could be compared.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

type baselineFile struct {
	Commit     string `json:"commit"`
	Benchmarks []struct {
		Name    string   `json:"name"`
		NsPerOp *float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// benchLine matches e.g. "BenchmarkFig5-4   5   493572471 ns/op   ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	baselinePath := flag.String("baseline", "", "recorded BENCH_<n>.json to compare against")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional slowdown before failing")
	flag.Parse()
	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -baseline is required")
		return 2
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		return 2
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", *baselinePath, err)
		return 2
	}
	want := make(map[string]float64)
	for _, b := range base.Benchmarks {
		if b.NsPerOp != nil {
			want[b.Name] = *b.NsPerOp
		}
	}

	compared, regressed := 0, 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		got, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		ref, ok := want[name]
		if !ok {
			fmt.Printf("skip  %-40s not in baseline %s\n", name, *baselinePath)
			continue
		}
		compared++
		ratio := got / ref
		status := "ok   "
		if ratio > 1+*tolerance {
			status = "FAIL "
			regressed++
		}
		fmt.Printf("%s %-40s %14.0f ns/op vs %14.0f baseline (%+.1f%%)\n",
			status, name, got, ref, (ratio-1)*100)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: reading stdin: %v\n", err)
		return 2
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark lines matched the baseline — nothing compared")
		return 1
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d of %d benchmarks regressed beyond %.0f%% vs %s (commit %s)\n",
			regressed, compared, *tolerance*100, *baselinePath, base.Commit)
		return 1
	}
	fmt.Printf("benchcheck: %d benchmarks within %.0f%% of %s (commit %s)\n",
		compared, *tolerance*100, *baselinePath, base.Commit)
	return 0
}
