package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseBenchCollectsRepeatedRuns(t *testing.T) {
	in := `goos: linux
BenchmarkFig5-4            1    500000000 ns/op    1234 B/op   56 allocs/op
BenchmarkScenario/dynamic-4  100   2000000 ns/op
BenchmarkFig5-4            1    480000000 ns/op
BenchmarkScenario/dynamic-4  100   2100000 ns/op
BenchmarkFig5-4            1    900000000 ns/op
PASS
`
	samples, order, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"BenchmarkFig5", "BenchmarkScenario/dynamic"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if got := samples["BenchmarkFig5"]; !reflect.DeepEqual(got, []float64{5e8, 4.8e8, 9e8}) {
		t.Fatalf("Fig5 samples = %v", got)
	}
	if got := samples["BenchmarkScenario/dynamic"]; len(got) != 2 {
		t.Fatalf("dynamic samples = %v", got)
	}
}

func TestMedian(t *testing.T) {
	for _, tc := range []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{7}, 7},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		// One wild outlier in five runs — the phantom-regression shape —
		// must not move the median.
		{[]float64{100, 101, 99, 100, 1000}, 100},
	} {
		if got := median(tc.in); got != tc.want {
			t.Errorf("median(%v) = %g, want %g", tc.in, got, tc.want)
		}
	}
	// The input slice is left unsorted.
	xs := []float64{3, 1, 2}
	median(xs)
	if !reflect.DeepEqual(xs, []float64{3, 1, 2}) {
		t.Fatalf("median reordered its input: %v", xs)
	}
}

func TestLoadBaselineAndCompareSamples(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_X.json")
	data := `{
  "commit": "abc1234",
  "benchmarks": [
    {"name": "BenchmarkFig5", "iterations": 5, "ns_per_op": 500000000, "bytes_per_op": 10, "allocs_per_op": 2},
    {"name": "BenchmarkScenario/dynamic", "iterations": 100, "ns_per_op": 2000000, "bytes_per_op": null, "allocs_per_op": null},
    {"name": "BenchmarkNoTiming", "iterations": 1, "ns_per_op": null, "bytes_per_op": null, "allocs_per_op": null}
  ]
}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	base, want, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.Commit != "abc1234" {
		t.Fatalf("commit = %q", base.Commit)
	}
	if want["BenchmarkFig5"] != 5e8 || want["BenchmarkScenario/dynamic"] != 2e6 {
		t.Fatalf("want map = %v", want)
	}
	if _, ok := want["BenchmarkNoTiming"]; ok {
		t.Fatal("null ns_per_op entry leaked into the comparison map")
	}

	samples, order := baselineSamples(base)
	if wantOrder := []string{"BenchmarkFig5", "BenchmarkScenario/dynamic"}; !reflect.DeepEqual(order, wantOrder) {
		t.Fatalf("order = %v, want %v", order, wantOrder)
	}
	// Each recorded timing is a one-sample series: its median is itself, so
	// the -compare path reports exactly the recorded number.
	if got := median(samples["BenchmarkFig5"]); got != 5e8 {
		t.Fatalf("median of recorded sample = %g", got)
	}

	if _, _, err := loadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("loadBaseline on a missing file did not error")
	}
}

func TestBenchLineRegexp(t *testing.T) {
	m := benchLine.FindStringSubmatch("BenchmarkScenario/dynamic-8   	     100	   2110313 ns/op	  233236 B/op")
	if m == nil || m[1] != "BenchmarkScenario/dynamic" || m[2] != "2110313" {
		t.Fatalf("submatch = %v", m)
	}
	if benchLine.MatchString("ok  	dismem	1.2s") {
		t.Fatal("matched a non-benchmark line")
	}
}

func TestCheckSpeedup(t *testing.T) {
	samples := map[string][]float64{
		"BenchmarkScenario/grizzly-scale":          {3.0e9, 3.1e9, 2.9e9},
		"BenchmarkScenario/grizzly-scale-parallel": {1.0e9, 0.9e9, 1.1e9},
	}
	pair := "BenchmarkScenario/grizzly-scale,BenchmarkScenario/grizzly-scale-parallel"
	if code := checkSpeedup(samples, pair, 3.0); code != 0 {
		t.Fatalf("3.0x achieved speedup failed the 3.0x gate: code %d", code)
	}
	if code := checkSpeedup(samples, pair, 3.5); code != 1 {
		t.Fatalf("3.0x achieved speedup passed a 3.5x gate: code %d", code)
	}
	if code := checkSpeedup(samples, "only-one-name", 1.0); code != 2 {
		t.Fatalf("malformed pair: code %d, want 2", code)
	}
	if code := checkSpeedup(samples, "BenchmarkScenario/grizzly-scale,BenchmarkMissing", 1.0); code != 1 {
		t.Fatalf("missing benchmark: code %d, want 1", code)
	}
}
