package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseBenchCollectsRepeatedRuns(t *testing.T) {
	in := `goos: linux
BenchmarkFig5-4            1    500000000 ns/op    1234 B/op   56 allocs/op
BenchmarkScenario/dynamic-4  100   2000000 ns/op
BenchmarkFig5-4            1    480000000 ns/op
BenchmarkScenario/dynamic-4  100   2100000 ns/op
BenchmarkFig5-4            1    900000000 ns/op
PASS
`
	samples, order, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"BenchmarkFig5", "BenchmarkScenario/dynamic"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if got := samples["BenchmarkFig5"]; !reflect.DeepEqual(got, []float64{5e8, 4.8e8, 9e8}) {
		t.Fatalf("Fig5 samples = %v", got)
	}
	if got := samples["BenchmarkScenario/dynamic"]; len(got) != 2 {
		t.Fatalf("dynamic samples = %v", got)
	}
}

func TestMedian(t *testing.T) {
	for _, tc := range []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{7}, 7},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		// One wild outlier in five runs — the phantom-regression shape —
		// must not move the median.
		{[]float64{100, 101, 99, 100, 1000}, 100},
	} {
		if got := median(tc.in); got != tc.want {
			t.Errorf("median(%v) = %g, want %g", tc.in, got, tc.want)
		}
	}
	// The input slice is left unsorted.
	xs := []float64{3, 1, 2}
	median(xs)
	if !reflect.DeepEqual(xs, []float64{3, 1, 2}) {
		t.Fatalf("median reordered its input: %v", xs)
	}
}

func TestBenchLineRegexp(t *testing.T) {
	m := benchLine.FindStringSubmatch("BenchmarkScenario/dynamic-8   	     100	   2110313 ns/op	  233236 B/op")
	if m == nil || m[1] != "BenchmarkScenario/dynamic" || m[2] != "2110313" {
		t.Fatalf("submatch = %v", m)
	}
	if benchLine.MatchString("ok  	dismem	1.2s") {
		t.Fatal("matched a non-benchmark line")
	}
}
