// Command dmpexp regenerates the paper's tables and figures, the
// supplementary experiments, and the design-choice ablations.
//
// Usage:
//
//	dmpexp -exp fig5 [-preset quick|full] [-grizzly] [-seed N]
//	dmpexp -exp all -preset quick -csv out/ -plot
//	dmpexp -exp headlines -seeds 5
//	dmpexp -scenario study.json
//	dmpexp -report report.md
//
// Experiments: table2, table3, fig2, fig4, fig5, fig6, fig7, fig8, fig9,
// util (allocated/used/stranded memory), xmodel (CIRNE vs Lublin
// robustness), ab-update, ab-oom, ab-backfill, ab-lender, ab-priority
// (design-choice ablations), ablations (all five), headlines (the paper's
// headline claims, optionally replicated with -seeds), all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"dismem/internal/experiments"
	"dismem/internal/telemetry"
)

func main() {
	// realMain returns instead of calling os.Exit so the profile defers
	// always flush, even on error paths.
	os.Exit(realMain())
}

// realMain's named return lets the profile-flushing defers below fail the
// process: a heap profile that didn't hit disk must not exit 0.
func realMain() (code int) {
	exp := flag.String("exp", "all", "experiment: table2 table3 fig2 fig4 fig5 fig6 fig7 fig8 fig9 ab-update ab-oom ab-backfill ab-lender ablations headlines all")
	preset := flag.String("preset", "quick", "scale preset: quick or full")
	withGrizzly := flag.Bool("grizzly", true, "include the Grizzly columns in fig5/fig8")
	csvDir := flag.String("csv", "", "also write plot-ready CSVs into this directory")
	plot := flag.Bool("plot", false, "render terminal charts where available")
	seed := flag.Int64("seed", 1, "random seed")
	seeds := flag.Int("seeds", 1, "replications for the headlines experiment (mean ± stdev)")
	shards := flag.Int("shards", 0, "cluster-ledger shard count (0 = single shard)")
	parallel := flag.Bool("parallel", false, "windowed executor with parallel refresh phases (bit-identical results)")
	workers := flag.Int("workers", 0, "parallel refresh worker count (0 = GOMAXPROCS; needs -parallel)")
	scenario := flag.String("scenario", "", "run a JSON scenario spec instead of a named experiment")
	telDir := flag.String("telemetry", "", "with -scenario: write one JSONL event log per (memory, policy) cell into this directory")
	telEvery := flag.Float64("telemetry-interval", 300, "telemetry pool-sampling period in simulated seconds (0 = events only)")
	report := flag.String("report", "", "write a full markdown evaluation report to this path and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmpexp: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dmpexp: cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "dmpexp: cpuprofile: %v\n", err)
				if code == 0 {
					code = 1
				}
				return
			}
			fmt.Fprintf(os.Stderr, "wrote CPU profile to %s\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err == nil {
				runtime.GC() // settle allocations so the heap profile reflects live data
				err = pprof.WriteHeapProfile(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "dmpexp: memprofile: %v\n", err)
				if code == 0 {
					code = 1
				}
				return
			}
			fmt.Fprintf(os.Stderr, "wrote heap profile to %s\n", *memprofile)
		}()
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dmpexp: %v\n", err)
			return 1
		}
	}

	var p experiments.Preset
	switch *preset {
	case "quick":
		p = experiments.Quick()
	case "full":
		p = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "dmpexp: unknown preset %q\n", *preset)
		return 2
	}
	p.Seed = *seed
	p.Shards = *shards
	p.Parallel = *parallel
	p.Workers = *workers

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmpexp: %v\n", err)
			return 1
		}
		err = experiments.WriteReport(f, p, experiments.ReportOptions{
			Grizzly:   *withGrizzly,
			Ablations: true,
			Seeds:     *seeds,
		})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmpexp: report: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *report)
		return 0
	}

	if *telDir != "" && *scenario == "" {
		fmt.Fprintln(os.Stderr, "dmpexp: -telemetry requires -scenario")
		return 2
	}
	if *scenario != "" {
		start := time.Now()
		out, cw, err := runScenarioFile(*scenario, p, *telDir, *telEvery)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmpexp: scenario: %v\n", err)
			return 1
		}
		if *telDir != "" {
			fmt.Printf("telemetry logs:         %s%c<scenario>_mem<pct>_<policy>.jsonl\n", *telDir, os.PathSeparator)
		}
		fmt.Printf("=== scenario %s (preset %s, %.1fs) ===\n%s\n", *scenario, p.Name, time.Since(start).Seconds(), out)
		if *csvDir != "" && cw != nil {
			path := filepath.Join(*csvDir, "scenario.csv")
			if err := writeCSVFile(path, cw); err != nil {
				fmt.Fprintf(os.Stderr, "dmpexp: %s: %v\n", path, err)
				return 1
			}
			fmt.Printf("wrote %s\n\n", path)
		}
		return 0
	}

	names := []string{*exp}
	switch *exp {
	case "all":
		names = []string{"table2", "table3", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
			"util", "xmodel", "ab-update", "ab-oom", "ab-backfill", "ab-lender", "ab-priority", "headlines"}
	case "ablations":
		names = []string{"ab-update", "ab-oom", "ab-backfill", "ab-lender", "ab-priority"}
	}
	for _, name := range names {
		start := time.Now()
		out, cw, err := run(name, p, *withGrizzly, *seeds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmpexp: %s: %v\n", name, err)
			return 1
		}
		fmt.Printf("=== %s (preset %s, %.1fs) ===\n%s\n", name, p.Name, time.Since(start).Seconds(), out)
		if *plot {
			if pl, ok := cw.(interface{ Plot() string }); ok {
				fmt.Println(pl.Plot())
			}
		}
		if *csvDir != "" && cw != nil {
			path := filepath.Join(*csvDir, name+".csv")
			if err := writeCSVFile(path, cw); err != nil {
				fmt.Fprintf(os.Stderr, "dmpexp: %s: %v\n", path, err)
				return 1
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	return 0
}

// csvWriter is implemented by every experiment result that can export
// plot-ready data.
type csvWriter interface {
	WriteCSV(w io.Writer) error
}

func writeCSVFile(path string, cw csvWriter) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := cw.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// result is what every experiment driver returns: printable and CSV-able.
type result interface {
	fmt.Stringer
	csvWriter
}

// wrap folds a (result, error) pair into run's return shape.
func wrap[T result](r T, err error) (string, csvWriter, error) {
	if err != nil {
		return "", nil, err
	}
	return r.String(), r, nil
}

func run(name string, p experiments.Preset, grizzly bool, seeds int) (string, csvWriter, error) {
	switch name {
	case "xmodel":
		return wrap(experiments.RunModelComparison(p))
	case "util":
		return wrap(experiments.RunUtilization(p))
	case "table2":
		return wrap(experiments.RunTable2(p))
	case "table3":
		return wrap(experiments.RunTable3(p))
	case "fig2":
		return wrap(experiments.RunFig2(p))
	case "fig4":
		return wrap(experiments.RunFig4(p))
	case "fig5":
		return wrap(experiments.RunFig5(p, grizzly))
	case "fig6":
		return wrap(experiments.RunFig6(p))
	case "fig7":
		return wrap(experiments.RunFig7(p))
	case "fig8":
		return wrap(experiments.RunFig8(p, grizzly))
	case "fig9":
		return wrap(experiments.RunFig9(p))
	case "ab-update":
		return wrap(experiments.RunAblationUpdateInterval(p))
	case "ab-oom":
		return wrap(experiments.RunAblationOOM(p))
	case "ab-backfill":
		return wrap(experiments.RunAblationBackfill(p))
	case "ab-lender":
		return wrap(experiments.RunAblationLender(p))
	case "ab-priority":
		return wrap(experiments.RunAblationPriority(p))
	case "headlines":
		if seeds > 1 {
			h, err := experiments.RunHeadlines(p, seeds)
			if err != nil {
				return "", nil, err
			}
			return h.String(), nil, nil
		}
		out, err := headlines(p)
		return out, nil, err
	default:
		return "", nil, fmt.Errorf("unknown experiment %q", name)
	}
}

// headlines reproduces the paper's headline claims in one summary.
func headlines(p experiments.Preset) (string, error) {
	var b strings.Builder
	f5, err := experiments.RunFig5(p, false)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "max throughput gain (dynamic - static):          %+.1f%%  (paper: up to 8%% at +0%%, 13%% at +60%%)\n",
		f5.DynamicAdvantage()*100)

	f7, err := experiments.RunFig7(p)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "max throughput-per-dollar gain (dynamic/static): %+.1f%%  (paper: up to 38%%)\n",
		f7.MaxDynamicGain()*100)

	f6, err := experiments.RunFig6(p)
	if err != nil {
		return "", err
	}
	best := 0.0
	for _, panel := range f6.Panels {
		if panel.Overest > 0 && panel.Scenario == "underprovisioned" {
			if r := panel.MedianReduction(); r > best {
				best = r
			}
		}
	}
	fmt.Fprintf(&b, "median response-time reduction (underprov +60%%): %.0f%%  (paper: 69%%)\n", best*100)

	f9, err := experiments.RunFig9(p)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "max memory saving at 95%% throughput:             %d pts (paper: ~40%%)\n", f9.MaxMemorySaving())
	return b.String(), nil
}

// runScenarioFile loads a JSON scenario spec and executes it. When telDir
// is non-empty, every (memory, policy) cell of the sweep streams its own
// JSONL event log into that directory.
func runScenarioFile(path string, p experiments.Preset, telDir string, telEvery float64) (string, csvWriter, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, err
	}
	defer f.Close()
	spec, err := experiments.LoadScenario(f)
	if err != nil {
		return "", nil, err
	}
	// Cells run on parallel sweep workers; the factory hands each cell a
	// private recorder so the per-cell logs stay byte-deterministic. File
	// creation errors are collected here (the factory cannot return one)
	// and surfaced after the sweep.
	var mu sync.Mutex
	var telErr error
	if telDir != "" {
		if err := os.MkdirAll(telDir, 0o755); err != nil {
			return "", nil, err
		}
		spec.Telemetry = func(memPct int, pol string) *telemetry.Recorder {
			name := fmt.Sprintf("%s_mem%03d_%s.jsonl", spec.Name, memPct, pol)
			out, err := os.Create(filepath.Join(telDir, name))
			if err != nil {
				mu.Lock()
				if telErr == nil {
					telErr = err
				}
				mu.Unlock()
				return nil
			}
			return telemetry.New(telemetry.Options{
				Sink:           telemetry.NewJSONL(out),
				SampleInterval: telEvery,
			})
		}
	}
	res, err := p.RunScenarioSpec(spec)
	if err != nil {
		return "", nil, err
	}
	if telErr != nil {
		return "", nil, fmt.Errorf("telemetry: %v", telErr)
	}
	return res.String(), res, nil
}
