// Command dmpd serves the simulator as a service: POST a ScenarioSpec
// JSON document to /v1/scenarios and receive the sweep result, computed on
// the shared pool behind admission control and a content-addressed
// single-flight cache. Responses are byte-identical to offline runs of the
// same spec at the same preset.
//
//	dmpd -addr :8080 -preset quick &
//	curl -s -XPOST localhost:8080/v1/scenarios -d @spec.json
//	curl -s localhost:8080/v1/scenarios/<id>/telemetry
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM begin a graceful shutdown: new connections stop, in-flight
// scenarios run to completion within -drain, and only then are survivors
// aborted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dismem/internal/experiments"
	"dismem/internal/server"
)

func main() {
	os.Exit(realMain())
}

func realMain() (code int) {
	addr := flag.String("addr", ":8080", "listen address")
	preset := flag.String("preset", "quick", "simulation scale: quick|full|bench")
	inflight := flag.Int("max-inflight", 2, "concurrently executing scenarios")
	queue := flag.Int("max-queue", 8, "scenarios waiting for a slot before 429")
	cache := flag.Int("cache", 64, "completed results kept (LRU)")
	sample := flag.Float64("telemetry-interval", 0, "pool sampling period in simulated seconds (0 = events only)")
	drain := flag.Duration("drain", 2*time.Minute, "graceful-shutdown budget for in-flight scenarios")
	flag.Parse()

	var p experiments.Preset
	switch *preset {
	case "quick":
		p = experiments.Quick()
	case "full":
		p = experiments.Full()
	case "bench":
		p = experiments.Bench()
	default:
		fmt.Fprintf(os.Stderr, "dmpd: unknown preset %q (want quick, full, or bench)\n", *preset)
		return 2
	}

	srv := server.New(server.Config{
		Preset:            p,
		MaxInFlight:       *inflight,
		MaxQueue:          *queue,
		CacheEntries:      *cache,
		TelemetryInterval: *sample,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "dmpd: preset %s listening on %s\n", p.Name, *addr)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "dmpd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Drain: let in-flight handlers (and the runs they wait on) finish,
	// then abort whatever is left so Shutdown can return.
	fmt.Fprintln(os.Stderr, "dmpd: shutting down, draining in-flight scenarios")
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	go func() {
		<-sctx.Done()
		srv.Abort()
	}()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "dmpd: shutdown: %v\n", err)
		return 1
	}
	return 0
}
