package dismem

// Public facade: the library's user-facing entry points, re-exported from
// the internal packages via type aliases so downstream modules can simulate
// scenarios and generate traces without reaching into internal/ (which Go
// would refuse to import).

import (
	"io"

	"dismem/internal/bundle"
	"dismem/internal/cluster"
	"dismem/internal/core"
	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/policy"
	"dismem/internal/slowdown"
	"dismem/internal/tracegen"
)

// Core simulation types.
type (
	// Config parameterises one simulation scenario (see core.Config).
	Config = core.Config
	// ClusterConfig describes the simulated system's nodes.
	ClusterConfig = cluster.Config
	// Result is a completed scenario's outcome.
	Result = core.Result
	// JobRecord is one job's scheduling outcome.
	JobRecord = core.JobRecord
	// Job is one trace entry: submission-script fields plus simulation
	// ground truth.
	Job = job.Job
	// UsageTrace is a job's memory consumption over time.
	UsageTrace = memtrace.Trace
	// UsagePoint is one step of a usage trace.
	UsagePoint = memtrace.Point
	// AppProfile characterises an application for the contention model.
	AppProfile = slowdown.Profile
	// Observer receives simulator lifecycle events.
	Observer = core.Observer
	// Timeline records system occupancy over a run.
	Timeline = core.Timeline
	// TraceParams configures the Figure 3 trace-generation pipeline.
	TraceParams = tracegen.Params
	// Trace is a generated workload plus its intermediate artefacts.
	Trace = tracegen.Output
)

// Allocation policies (the paper's three).
type PolicyKind = policy.Kind

// Policy constants.
const (
	Baseline = policy.Baseline
	Static   = policy.Static
	Dynamic  = policy.Dynamic
)

// Out-of-memory handling modes.
const (
	FailRestart       = core.FailRestart
	CheckpointRestart = core.CheckpointRestart
)

// Backfill algorithms.
const (
	EASYBackfill         = core.EASYBackfill
	ConservativeBackfill = core.ConservativeBackfill
	NoBackfill           = core.NoBackfill
)

// Simulate runs one scenario to completion and returns its result.
func Simulate(cfg Config, jobs []*Job) (*Result, error) {
	s, err := core.New(cfg, jobs)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// GenerateTrace runs the paper's trace-generation pipeline.
func GenerateTrace(params TraceParams) (*Trace, error) {
	return tracegen.Run(params)
}

// NewUsageTrace builds a validated memory-usage step function.
func NewUsageTrace(points []UsagePoint) (*UsageTrace, error) {
	return memtrace.New(points)
}

// ConstantUsage returns a trace that uses mb from time zero onward.
func ConstantUsage(mb int64) *UsageTrace { return memtrace.Constant(mb) }

// MatchProfile returns the built-in application profile nearest to the
// given job size and runtime, for hand-built workloads.
func MatchProfile(nodes int, runtimeSec float64) *AppProfile {
	return slowdown.NewMatcher(nil).Match(nodes, runtimeSec)
}

// WriteBundle persists jobs (with usage traces and profiles) losslessly.
func WriteBundle(w io.Writer, jobs []*Job) error { return bundle.Write(w, jobs) }

// ReadBundle loads jobs written by WriteBundle.
func ReadBundle(r io.Reader) ([]*Job, error) { return bundle.Read(r) }

// NewTimeline returns an occupancy recorder to plug into Config.Observer.
func NewTimeline() *Timeline { return core.NewTimeline() }
