// Benchmarks regenerating each table and figure of the paper's evaluation
// at the Bench preset scale (32-node system, quarter-day traces). Run with
//
//	go test -bench=. -benchmem
//
// Every BenchmarkTableN/BenchmarkFigN corresponds to the same-numbered
// artefact in the paper; the per-iteration wall time is the cost of a full
// regeneration at that scale.
package dismem

import (
	"testing"

	"dismem/internal/cluster"
	"dismem/internal/core"
	"dismem/internal/experiments"
	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/policy"
	"dismem/internal/slowdown"
	"dismem/internal/tracegen"
)

func benchPreset() experiments.Preset { return experiments.Bench() }

func BenchmarkTable2(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable3(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig2(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig4(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates the whole figure — the 7×2 synthetic grid —
// through the barrier-free pipeline. The trace cache is reset every
// iteration so each run pays the full cold cost; cross-iteration reuse
// would understate it.
func BenchmarkFig5(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		tracegen.ResetCache()
		if _, err := experiments.RunFig5(p, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Serial is the reference point for BenchmarkFig5: the
// pre-pipeline serial driver that generates every trace from scratch.
// The BenchmarkFig5/BenchmarkFig5Serial ratio is the pipeline's speedup.
func BenchmarkFig5Serial(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5Serial(p, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Panel times one panel (job mix 50 %, +60 % overestimation)
// — the unit cell of the figure's grid.
func BenchmarkFig5Panel(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5Panel(p, 0.5, 0.6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		tracegen.ResetCache()
		if _, err := experiments.RunFig6(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		tracegen.ResetCache()
		if _, err := experiments.RunFig7(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		tracegen.ResetCache()
		if _, err := experiments.RunFig8(p, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		tracegen.ResetCache()
		if _, err := experiments.RunFig9(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeadlines regenerates the four replicated headline metrics
// (two seeds). Fig. 5/6/7/9 replications share every trace through the
// cache, so this also measures the cross-figure dedup win.
func BenchmarkHeadlines(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		tracegen.ResetCache()
		if _, err := experiments.RunHeadlines(p, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenario isolates one simulation run (trace generation hoisted
// out), per policy — the inner loop every figure is built from.
func BenchmarkScenario(b *testing.B) {
	p := benchPreset()
	trace, err := p.SyntheticTrace(0.5, 0.6)
	if err != nil {
		b.Fatal(err)
	}
	mc, err := experiments.MemConfigByPct(75)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []policy.Kind{policy.Baseline, policy.Static, policy.Dynamic} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.RunScenario(trace.Jobs, p.SystemNodes, mc, kind); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// grizzly-scale: one sampled week of the synthetic Grizzly system at the
	// paper's full 1490 nodes under the dynamic policy — the high
	// concurrent-running regime where per-event refresh cost dominates. Run
	// it with a low -benchtime (it is orders of magnitude heavier than the
	// sub-benchmarks above, which is the point).
	b.Run("grizzly-scale", func(b *testing.B) {
		gp := benchPreset()
		gp.GrizzlyNodes = 1490
		jobs, err := gp.GrizzlyTrace(0.5)
		if err != nil {
			b.Fatal(err)
		}
		gmc, err := experiments.MemConfigByPct(62)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gp.RunScenario(jobs, gp.GrizzlyNodes, gmc, policy.Dynamic); err != nil {
				b.Fatal(err)
			}
		}
	})

	// grizzly-scale-parallel: the same week with the sharded ledger and the
	// windowed executor turned on. Results are bit-identical to grizzly-scale
	// (the differential suite proves it); the ratio of the two is the
	// speedup the CI multi-core gate tracks. On a single-core runner the two
	// are expected to be within noise of each other.
	b.Run("grizzly-scale-parallel", func(b *testing.B) {
		gp := benchPreset()
		gp.GrizzlyNodes = 1490
		jobs, err := gp.GrizzlyTrace(0.5)
		if err != nil {
			b.Fatal(err)
		}
		gmc, err := experiments.MemConfigByPct(62)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, err := gp.RunScenarioWith(jobs, gp.GrizzlyNodes, gmc, policy.Dynamic,
				func(c *core.Config) {
					c.Parallel = true
					c.Cluster.Shards = 16
				})
			if err != nil {
				b.Fatal(err)
			}
		}
	})

	// grizzly-scale-domains: the same week under the partitioned pressure
	// model — per-rack contention domains instead of one global rho. Results
	// are a different (finer) contention model, not bit-comparable to
	// grizzly-scale; the run fails if the executor never proves a window
	// independent, so the cross-event parallelism the partition exists for is
	// demonstrably exercised at paper scale.
	b.Run("grizzly-scale-domains", func(b *testing.B) {
		gp := benchPreset()
		gp.GrizzlyNodes = 1490
		jobs, err := gp.GrizzlyTrace(0.5)
		if err != nil {
			b.Fatal(err)
		}
		gmc, err := experiments.MemConfigByPct(62)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var ws core.WindowStats
			_, err := gp.RunScenarioWith(jobs, gp.GrizzlyNodes, gmc, policy.Dynamic,
				func(c *core.Config) {
					c.Parallel = true
					c.Pressure = core.PressureDomains
					c.Domains = 16
					c.WindowStatsOut = &ws
				})
			if err != nil {
				b.Fatal(err)
			}
			if ws.Independent == 0 || ws.Multi == 0 {
				b.Fatalf("domains mode proved no window independent at grizzly scale: %+v", ws)
			}
		}
	})

	// 100k: the scale target this PR is named for — a 100,000-node cluster
	// with ~2000 concurrently running multi-node jobs under the dynamic
	// policy, sharded ledger and windowed executor on. The trace is
	// handcrafted (the synthetic generators top out at paper scale) so the
	// benchmark isolates simulator cost, not generation cost. One iteration
	// must stay under a minute on a single core (gated in CI).
	b.Run("100k", func(b *testing.B) {
		jobs := hundredKJobs()
		cfg := core.Config{
			Cluster: cluster.Config{
				Nodes:    100_000,
				Cores:    32,
				NormalMB: experiments.NormalNodeMB,
				Shards:   64,
			},
			Policy:         policy.Dynamic,
			UpdateInterval: 200,
			Parallel:       true,
			Seed:           1,
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := core.New(cfg, jobs)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// 100k-domains: the 100k scenario under the partitioned pressure model.
	// The per-event refresh drops from O(running set) to O(touched-domain
	// residents), and simultaneous memory updates of rack-disjoint jobs
	// dispatch concurrently on the worker team — the multi-core wall-clock
	// win the CI speedup gate tracks against plain 100k. The run fails if no
	// window ever dispatched concurrently.
	b.Run("100k-domains", func(b *testing.B) {
		jobs := hundredKDomainsJobs()
		cfg := core.Config{
			Cluster: cluster.Config{
				Nodes:    100_000,
				Cores:    32,
				NormalMB: experiments.NormalNodeMB,
			},
			Policy:         policy.Dynamic,
			UpdateInterval: 200,
			Parallel:       true,
			Pressure:       core.PressureDomains,
			Domains:        64,
			Seed:           1,
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var ws core.WindowStats
			c := cfg
			c.WindowStatsOut = &ws
			s, err := core.New(c, jobs)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Run(); err != nil {
				b.Fatal(err)
			}
			if ws.Independent == 0 || ws.Multi == 0 {
				b.Fatalf("domains mode proved no window independent at 100k: %+v", ws)
			}
		}
	})
}

// hundredKJobs handcrafts the 100k-node workload: 2000 jobs of 48 nodes each
// (96k nodes busy at peak), submits staggered over ten minutes, runtimes
// spread 2000–4000 s so finishes don't all collide, and a growing usage
// trace that forces periodic memory updates (and hence lender-ledger churn)
// on every job. Everything is derived from the job index — no RNG — so the
// workload is trivially reproducible.
func hundredKJobs() []*job.Job {
	prof := &slowdown.Profile{
		Name: "bench-stream", Nodes: 1, RuntimeSec: 3000, BandwidthGBs: 8,
		Sens: slowdown.CurveStream,
	}
	jobs := make([]*job.Job, 0, 2000)
	for i := 0; i < 2000; i++ {
		runtime := 2000 + float64(i%200)*10 // 2000..3990 s
		usage := memtrace.MustNew([]memtrace.Point{
			{T: 0, MB: 8 * 1024},
			{T: runtime * 0.7, MB: 20 * 1024},
			{T: runtime, MB: 24 * 1024},
		})
		jobs = append(jobs, &job.Job{
			ID:          i + 1,
			SubmitTime:  float64(i%600) + float64(i)*0.01, // staggered, few exact ties
			Nodes:       48,
			RequestMB:   26 * 1024,
			LimitSec:    runtime * 4,
			BaseRuntime: runtime,
			Usage:       usage,
			Profile:     prof,
		})
	}
	return jobs
}

// hundredKDomainsJobs is hundredKJobs with one job submitted per whole
// second. Same-tick jobs are useless for window parallelism — the scheduler
// places them on adjacent nodes, so their domain sets collide — but with
// unique integer starts and a jitter-free 200 s update period, updates of
// jobs whose starts are congruent mod 200 land on the same timestamp. Those
// jobs were placed ~200 jobs (≈9600 node IDs, several shards) apart, so
// from t=2000 on (submits done) the executor sees pure update windows of up
// to ten domain-disjoint members. The plain-100k workload keeps its
// near-unique submits; this variant exists so the dispatch path, not just
// the O(Δ) refresh, carries the benchmark.
func hundredKDomainsJobs() []*job.Job {
	jobs := hundredKJobs()
	for i, j := range jobs {
		j.SubmitTime = float64(i)
	}
	return jobs
}

// BenchmarkWhatIf is the copy-on-write branching headline: answering nine
// late what-if questions about one grizzly-scale week. "branched" simulates
// the shared prefix once (to 90 % of the week's makespan), forks eight
// variant overlays copy-on-write, and finishes base plus branches on the
// sweep pool; "full-runs" is the pre-CoW cost of the same answers — nine
// independent simulations from t=0. The CI speedup gate holds the ratio at
// ≥4×: each branch pays only its own suffix plus the shards it dirties, so
// the prefix — the bulk of the work — is paid once instead of nine times.
func BenchmarkWhatIf(b *testing.B) {
	gp := benchPreset()
	gp.GrizzlyNodes = 1490
	jobs, err := gp.GrizzlyTrace(0.5)
	if err != nil {
		b.Fatal(err)
	}
	gmc, err := experiments.MemConfigByPct(62)
	if err != nil {
		b.Fatal(err)
	}
	cfg := gp.ConfigFor(gp.GrizzlyNodes, gmc, policy.Dynamic)

	// One full reference run fixes the branch point at 90 % of the week's
	// makespan — late-diverging, the regime prefix sharing exists for.
	ref, err := core.New(cfg, jobs)
	if err != nil {
		b.Fatal(err)
	}
	refRes, err := ref.Run()
	if err != nil {
		b.Fatal(err)
	}
	branchAt := 0.9 * refRes.Makespan

	variants := []experiments.BranchVariant{
		{Name: "noop"},
		{Name: "pol-static", Policy: "static"},
		{Name: "pol-baseline", Policy: "baseline"},
		{Name: "bf-none", Backfill: "none"},
		{Name: "bf-conservative", Backfill: "conservative"},
		{Name: "upd-fast", UpdateInterval: 100},
		{Name: "upd-slow", UpdateInterval: 400},
		{Name: "repack", Repack: true},
	}

	b.Run("branched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base, err := core.New(cfg, jobs)
			if err != nil {
				b.Fatal(err)
			}
			base.Start()
			if err := base.StepUntil(branchAt); err != nil {
				b.Fatal(err)
			}
			_, runs, err := experiments.Branch(base, variants, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(runs) != len(variants) {
				b.Fatalf("got %d branch runs, want %d", len(runs), len(variants))
			}
		}
	})

	b.Run("full-runs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for k := 0; k < 1+len(variants); k++ {
				s, err := core.New(cfg, jobs)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// Ablation benches: the design-choice studies DESIGN.md calls out.

func BenchmarkAblationUpdateInterval(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationUpdateInterval(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOOM(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationOOM(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBackfill(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationBackfill(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLender(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationLender(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPriority(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationPriority(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGeneration isolates the Fig. 3 pipeline. It bypasses the
// trace cache: the point is the generator's cost, not a map lookup.
func BenchmarkTraceGeneration(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := p.SyntheticTraceUncached(0.5, 0.6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceCacheHit is the other side: the cost of re-requesting an
// already-generated trace, which is what every figure after the first pays.
func BenchmarkTraceCacheHit(b *testing.B) {
	p := benchPreset()
	if _, err := p.SyntheticTrace(0.5, 0.6); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SyntheticTrace(0.5, 0.6); err != nil {
			b.Fatal(err)
		}
	}
}
