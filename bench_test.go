// Benchmarks regenerating each table and figure of the paper's evaluation
// at the Bench preset scale (32-node system, quarter-day traces). Run with
//
//	go test -bench=. -benchmem
//
// Every BenchmarkTableN/BenchmarkFigN corresponds to the same-numbered
// artefact in the paper; the per-iteration wall time is the cost of a full
// regeneration at that scale.
package dismem

import (
	"testing"

	"dismem/internal/experiments"
	"dismem/internal/policy"
	"dismem/internal/tracegen"
)

func benchPreset() experiments.Preset { return experiments.Bench() }

func BenchmarkTable2(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable3(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig2(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig4(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates the whole figure — the 7×2 synthetic grid —
// through the barrier-free pipeline. The trace cache is reset every
// iteration so each run pays the full cold cost; cross-iteration reuse
// would understate it.
func BenchmarkFig5(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		tracegen.ResetCache()
		if _, err := experiments.RunFig5(p, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Serial is the reference point for BenchmarkFig5: the
// pre-pipeline serial driver that generates every trace from scratch.
// The BenchmarkFig5/BenchmarkFig5Serial ratio is the pipeline's speedup.
func BenchmarkFig5Serial(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5Serial(p, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Panel times one panel (job mix 50 %, +60 % overestimation)
// — the unit cell of the figure's grid.
func BenchmarkFig5Panel(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5Panel(p, 0.5, 0.6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		tracegen.ResetCache()
		if _, err := experiments.RunFig6(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		tracegen.ResetCache()
		if _, err := experiments.RunFig7(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		tracegen.ResetCache()
		if _, err := experiments.RunFig8(p, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		tracegen.ResetCache()
		if _, err := experiments.RunFig9(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeadlines regenerates the four replicated headline metrics
// (two seeds). Fig. 5/6/7/9 replications share every trace through the
// cache, so this also measures the cross-figure dedup win.
func BenchmarkHeadlines(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		tracegen.ResetCache()
		if _, err := experiments.RunHeadlines(p, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenario isolates one simulation run (trace generation hoisted
// out), per policy — the inner loop every figure is built from.
func BenchmarkScenario(b *testing.B) {
	p := benchPreset()
	trace, err := p.SyntheticTrace(0.5, 0.6)
	if err != nil {
		b.Fatal(err)
	}
	mc, err := experiments.MemConfigByPct(75)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []policy.Kind{policy.Baseline, policy.Static, policy.Dynamic} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.RunScenario(trace.Jobs, p.SystemNodes, mc, kind); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// grizzly-scale: one sampled week of the synthetic Grizzly system at the
	// paper's full 1490 nodes under the dynamic policy — the high
	// concurrent-running regime where per-event refresh cost dominates. Run
	// it with a low -benchtime (it is orders of magnitude heavier than the
	// sub-benchmarks above, which is the point).
	b.Run("grizzly-scale", func(b *testing.B) {
		gp := benchPreset()
		gp.GrizzlyNodes = 1490
		jobs, err := gp.GrizzlyTrace(0.5)
		if err != nil {
			b.Fatal(err)
		}
		gmc, err := experiments.MemConfigByPct(62)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gp.RunScenario(jobs, gp.GrizzlyNodes, gmc, policy.Dynamic); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation benches: the design-choice studies DESIGN.md calls out.

func BenchmarkAblationUpdateInterval(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationUpdateInterval(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOOM(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationOOM(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBackfill(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationBackfill(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLender(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationLender(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPriority(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationPriority(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGeneration isolates the Fig. 3 pipeline. It bypasses the
// trace cache: the point is the generator's cost, not a map lookup.
func BenchmarkTraceGeneration(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := p.SyntheticTraceUncached(0.5, 0.6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceCacheHit is the other side: the cost of re-requesting an
// already-generated trace, which is what every figure after the first pays.
func BenchmarkTraceCacheHit(b *testing.B) {
	p := benchPreset()
	if _, err := p.SyntheticTrace(0.5, 0.6); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SyntheticTrace(0.5, 0.6); err != nil {
			b.Fatal(err)
		}
	}
}
