// Benchmarks regenerating each table and figure of the paper's evaluation
// at the Bench preset scale (32-node system, quarter-day traces). Run with
//
//	go test -bench=. -benchmem
//
// Every BenchmarkTableN/BenchmarkFigN corresponds to the same-numbered
// artefact in the paper; the per-iteration wall time is the cost of a full
// regeneration at that scale.
package dismem

import (
	"testing"

	"dismem/internal/experiments"
	"dismem/internal/policy"
)

func benchPreset() experiments.Preset { return experiments.Bench() }

func BenchmarkTable2(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable3(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig2(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig4(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 times one panel (job mix 50 %, +60 % overestimation) — the
// unit cell of the figure's 7×2 grid.
func BenchmarkFig5(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5Panel(p, 0.5, 0.6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(p, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig9(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenario isolates one simulation run (trace generation hoisted
// out), per policy — the inner loop every figure is built from.
func BenchmarkScenario(b *testing.B) {
	p := benchPreset()
	trace, err := p.SyntheticTrace(0.5, 0.6)
	if err != nil {
		b.Fatal(err)
	}
	mc, err := experiments.MemConfigByPct(75)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []policy.Kind{policy.Baseline, policy.Static, policy.Dynamic} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.RunScenario(trace.Jobs, p.SystemNodes, mc, kind); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation benches: the design-choice studies DESIGN.md calls out.

func BenchmarkAblationUpdateInterval(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationUpdateInterval(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOOM(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationOOM(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBackfill(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationBackfill(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLender(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationLender(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPriority(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationPriority(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGeneration isolates the Fig. 3 pipeline.
func BenchmarkTraceGeneration(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := p.SyntheticTrace(0.5, 0.6); err != nil {
			b.Fatal(err)
		}
	}
}
