// Trace pipeline walkthrough: runs the paper's Figure 3 methodology step by
// step — CIRNE synthetic workload, Borg-shape mining, ARCHER memory
// requests, RDP reduction — and prints what each stage produced, ending
// with an SWF export.
//
//	go run ./examples/tracepipeline
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"dismem/internal/swf"
	"dismem/internal/traces/google"
	"dismem/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Step 1: CIRNE synthetic trace (arrivals, sizes, runtimes, limits).
	cp := workload.NewCirneParams(128, 0.8, 1)
	cp.MaxNodes = 32
	specs, err := workload.Generate(cp, rng)
	if err != nil {
		log.Fatal(err)
	}
	var nodeHours float64
	for _, s := range specs {
		nodeHours += float64(s.Nodes) * s.Runtime / 3600
	}
	fmt.Printf("Step 1   CIRNE model:       %d jobs, %.0f node-hours over %g day(s)\n",
		len(specs), nodeHours, cp.Days)

	// Step 6 prerequisite: synthesise a Borg cell and mine usage shapes.
	cell := google.Generate(rng, 3000)
	batch := cell.FilterBatch()
	fmt.Printf("Step 6a  Borg cell:         %d collections, %d best-effort batch jobs survive filtering\n",
		len(cell.Collections), len(batch))
	lib, err := google.NewShapeLibrary(cell, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Step 6b  shape library:     %d usage shapes (RDP-reduced, 12 TB denormalised)\n", lib.Len())

	// Steps 2–7: attach memory demands (ARCHER/Table 3), usage traces,
	// and application profiles; filter to a 25 % large-job mix with
	// +60 % request overestimation.
	jobs, err := workload.BuildJobs(specs, workload.BuildParams{
		LargeFrac:      0.25,
		Overestimation: 0.60,
		Source:         lib,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	var large int
	var padMB int64
	for _, j := range jobs {
		if j.PeakUsageMB() > 64*1024 {
			large++
		}
		padMB += (j.RequestMB - j.PeakUsageMB()) * int64(j.Nodes)
	}
	fmt.Printf("Steps 2-7 built jobs:       %d jobs, %d large-memory, %.1f TB requested-but-never-used\n",
		len(jobs), large, float64(padMB)/1024/1024)

	// Steps 8–9: emit the simulator input files.
	f, err := os.CreateTemp("", "dismem-*.swf")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := swf.Write(f, swf.FromJobs(jobs, 32, "example pipeline trace")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Steps 8-9 SWF export:       %s\n", f.Name())
}
