// Topology-aware lending: when remote-memory latency grows with hop count
// on the interconnect, borrowing from the nearest nodes instead of the
// most-free nodes keeps jobs faster. This example builds a 3D torus,
// compares the two lender orders under increasing hop penalties, and
// reports per-job stretch and throughput.
//
//	go run ./examples/topologyaware
package main

import (
	"fmt"
	"log"

	"dismem/internal/cluster"
	"dismem/internal/core"
	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/policy"
	"dismem/internal/slowdown"
	"dismem/internal/topology"
)

func main() {
	const nodes = 64
	torus := topology.Design(nodes)
	fmt.Printf("interconnect: %v, mean distance %.2f hops, bisection %d links\n\n",
		torus, torus.AvgHops(), torus.BisectionLinks())

	// Memory-hungry jobs that must borrow about half their working set
	// remotely on a 64 GB/node system.
	matcher := slowdown.NewMatcher(nil)
	var jobs []*job.Job
	for i := 0; i < 48; i++ {
		peak := int64(96) * 1024 // 96 GB/node: 32 GB borrowed
		jobs = append(jobs, &job.Job{
			ID:          i + 1,
			SubmitTime:  float64(i) * 200,
			Nodes:       1 + i%3,
			RequestMB:   peak,
			LimitSec:    1e7,
			BaseRuntime: 3600,
			Usage:       memtrace.Constant(peak),
			Profile:     matcher.Match(1+i%3, 3600),
		})
	}

	fmt.Printf("%-14s %-12s %12s %14s\n", "lender order", "hop penalty", "mean stretch", "jobs/hour")
	for _, hp := range []float64{0, 0.5, 1.0} {
		for _, lp := range []core.LenderPolicy{core.MostFree, core.NearestFirst} {
			cfg := core.Config{
				Cluster:      cluster.Config{Nodes: nodes, Cores: 32, NormalMB: 64 * 1024},
				Policy:       policy.Static,
				Topology:     &torus,
				LenderPolicy: lp,
				HopPenalty:   hp,
			}
			sim, err := core.New(cfg, jobs)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				log.Fatal(err)
			}
			if res.Infeasible {
				log.Fatalf("infeasible: job %d", res.InfeasibleJob)
			}
			fmt.Printf("%-14s %-12.2f %12.3f %14.2f\n",
				lp, hp, res.MeanStretch(), res.Throughput()*3600)
		}
	}
	fmt.Println("\nWith free distance (penalty 0) the orders tie; once hops cost,")
	fmt.Println("nearest-first lending lowers the stretch of every borrowing job.")
}
