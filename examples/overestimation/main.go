// Overestimation study: the tragedy-of-the-commons the paper motivates —
// users pad their memory requests, the static policy strands the padding,
// and the dynamic policy reclaims it. This example sweeps the
// overestimation factor on an underprovisioned system and reports
// throughput and response-time effects per policy.
//
//	go run ./examples/overestimation
package main

import (
	"fmt"
	"log"
	"math"

	"dismem/internal/experiments"
	"dismem/internal/metrics"
	"dismem/internal/policy"
)

func main() {
	p := experiments.Quick()
	const largeFrac = 0.5
	mc, err := experiments.MemConfigByPct(50) // underprovisioned for this mix
	if err != nil {
		log.Fatal(err)
	}

	// Normalise against the baseline on the fully provisioned system
	// with accurate requests.
	trace0, err := p.SyntheticTrace(largeFrac, 0)
	if err != nil {
		log.Fatal(err)
	}
	norm, err := p.BaselineNorm(trace0.Jobs, p.SystemNodes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("System at 50%% memory, %d%% large-memory jobs\n\n", int(largeFrac*100))
	fmt.Printf("%-9s %18s %18s %22s\n", "overest", "static throughput", "dynamic throughput", "median response (s)")
	for _, ov := range []float64{0, 0.25, 0.50, 0.60, 0.75, 1.00} {
		tr, err := p.SyntheticTrace(largeFrac, ov)
		if err != nil {
			log.Fatal(err)
		}
		row := map[policy.Kind]struct {
			tput   float64
			median float64
		}{}
		for _, kind := range []policy.Kind{policy.Static, policy.Dynamic} {
			res, err := p.RunScenario(tr.Jobs, p.SystemNodes, mc, kind)
			if err != nil {
				log.Fatal(err)
			}
			entry := row[kind]
			entry.tput = math.NaN()
			entry.median = math.NaN()
			if !res.Infeasible {
				entry.tput = res.Throughput() / norm
				if rts := res.ResponseTimes(); len(rts) > 0 {
					e, err := metrics.NewECDF(rts)
					if err != nil {
						log.Fatal(err)
					}
					entry.median = e.Median()
				}
			}
			row[kind] = entry
		}
		s, d := row[policy.Static], row[policy.Dynamic]
		fmt.Printf("+%-8.0f %18s %18s %10s / %-10s\n", ov*100,
			pct(s.tput), pct(d.tput), sec(s.median), sec(d.median))
	}
	fmt.Println("\nStatic throughput decays with overestimation; dynamic stays flat because")
	fmt.Println("the padding is reclaimed at the first usage update (paper Figure 8).")
}

func pct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", v*100)
}

func sec(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}
