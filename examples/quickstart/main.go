// Quickstart: build a small cluster, submit a handful of jobs, and compare
// the three memory-allocation policies end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dismem/internal/cluster"
	"dismem/internal/core"
	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/policy"
	"dismem/internal/slowdown"
)

func main() {
	// A 16-node cluster: half the nodes have 64 GB, half 128 GB.
	clusterCfg := cluster.Config{
		Nodes:     16,
		Cores:     32,
		NormalMB:  64 * 1024,
		LargeFrac: 0.5,
	}

	// Hand-written workload: each job declares what the user *requests*
	// (RequestMB, typically padded) and what it actually uses over time
	// (the Usage trace, known only to the simulator).
	matcher := slowdown.NewMatcher(nil)
	mkJob := func(id int, submit float64, nodes int, peakMB int64, runtime float64) *job.Job {
		// Usage ramps to its peak mid-run, then falls back: plenty of
		// reclaimable memory for the dynamic policy.
		usage := memtrace.MustNew([]memtrace.Point{
			{T: 0, MB: peakMB / 4},
			{T: runtime * 0.4, MB: peakMB},
			{T: runtime * 0.6, MB: peakMB / 3},
		})
		return &job.Job{
			ID:          id,
			SubmitTime:  submit,
			Nodes:       nodes,
			RequestMB:   peakMB + peakMB/2, // user overestimates by 50 %
			LimitSec:    runtime * 3,
			BaseRuntime: runtime,
			Usage:       usage,
			Profile:     matcher.Match(nodes, runtime),
		}
	}
	var jobs []*job.Job
	for i := 0; i < 24; i++ {
		nodes := 1 + i%4
		peak := int64(20+10*(i%7)) * 1024 // 20–80 GB per node
		jobs = append(jobs, mkJob(i+1, float64(i)*600, nodes, peak, 3600*(1+float64(i%3))))
	}

	fmt.Println("policy    completed  throughput(jobs/h)  mean-response(s)  OOM")
	for _, kind := range []policy.Kind{policy.Baseline, policy.Static, policy.Dynamic} {
		sim, err := core.New(core.Config{Cluster: clusterCfg, Policy: kind}, jobs)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		if res.Infeasible {
			fmt.Printf("%-9s  (infeasible: job %d cannot run without disaggregation)\n",
				kind, res.InfeasibleJob)
			continue
		}
		var meanRT float64
		rts := res.ResponseTimes()
		for _, rt := range rts {
			meanRT += rt
		}
		if len(rts) > 0 {
			meanRT /= float64(len(rts))
		}
		fmt.Printf("%-9s  %9d  %18.2f  %16.0f  %3d\n",
			kind, res.Completed, res.Throughput()*3600, meanRT, res.OOMKills)
	}
}
