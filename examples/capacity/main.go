// Capacity planning: how much memory must a system have to hold 95 % of its
// fully provisioned throughput? This example reproduces the paper's
// Figure 9 question for an operator deciding between provisioning levels,
// and prints the resulting dollar savings from the Table 4 cost model.
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"dismem/internal/experiments"
	"dismem/internal/metrics"
)

func main() {
	p := experiments.Quick()

	fmt.Println("Generating workload (50% large-memory jobs) and sweeping provisioning levels…")
	f8, err := experiments.RunFig8(p, false)
	if err != nil {
		log.Fatal(err)
	}
	f9, err := experiments.Fig9FromFig8(f8, 0.95)
	if err != nil {
		log.Fatal(err)
	}

	fullCfg, err := experiments.MemConfigByPct(100)
	if err != nil {
		log.Fatal(err)
	}
	fullCost := metrics.SystemCostUSD(p.SystemNodes, fullCfg.TotalMemMB(p.SystemNodes))

	fmt.Printf("\n%-12s %-22s %-22s\n", "overest", "static needs", "dynamic needs")
	for _, pt := range f9.Points {
		fmt.Printf("+%-11.0f %-22s %-22s\n",
			pt.Overest*100, describe(p, pt.StaticPct, fullCost), describe(p, pt.DynamicPct, fullCost))
	}
	fmt.Printf("\nLargest provisioning gap (static − dynamic): %d percentage points\n", f9.MaxMemorySaving())
	fmt.Println("(paper: the dynamic policy reaches the threshold saving almost 40% more memory)")
}

func describe(p experiments.Preset, pct int, fullCost float64) string {
	if pct == 0 {
		return "unreachable"
	}
	mc, err := experiments.MemConfigByPct(pct)
	if err != nil {
		return "?"
	}
	cost := metrics.SystemCostUSD(p.SystemNodes, mc.TotalMemMB(p.SystemNodes))
	return fmt.Sprintf("%3d%% mem ($%.2fM, -%.0f%%)", pct, cost/1e6, (1-cost/fullCost)*100)
}
